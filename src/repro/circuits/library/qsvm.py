"""Quantum support vector machine (ZZ feature map) circuit.

The QSVM kernel circuit is a second-order Pauli-Z evolution feature map
(Havlíček et al.) with two repetitions and linear (chain) entanglement:
per repetition a Hadamard and data-phase on every qubit, then for every
neighbouring pair a ``CX · P · CX`` sandwich.  Gate count is ``10n - 6``
which reproduces the paper's Table I exactly (274 gates at 28 qubits).
"""

from __future__ import annotations

from ..circuit import Circuit
from ._util import angles, family_rng

__all__ = ["qsvm"]


def qsvm(num_qubits: int, reps: int = 2, seed: int = 0) -> Circuit:
    """Build the QSVM / ZZ-feature-map circuit with *reps* repetitions."""
    if num_qubits < 2:
        raise ValueError("qsvm requires at least 2 qubits")
    rng = family_rng("qsvm", num_qubits, seed)
    data = angles(rng, num_qubits)
    circuit = Circuit(num_qubits, name=f"qsvm_{num_qubits}")
    for _ in range(reps):
        for q in range(num_qubits):
            circuit.h(q)
        for q in range(num_qubits):
            circuit.p(2.0 * data[q], q)
        for q in range(num_qubits - 1):
            circuit.cx(q, q + 1)
            circuit.p(2.0 * (float(data[q]) * float(data[q + 1])) % (2.0 * 3.141592653589793), q + 1)
            circuit.cx(q, q + 1)
    return circuit

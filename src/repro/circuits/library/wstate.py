"""W-state preparation circuit.

Uses the standard cascade of controlled ``F`` blocks (a controlled-RY
sandwich) followed by CX gates, as in MQT-Bench.  Gate count is
``4(n-1) + 1`` for ``n`` qubits, matching the paper's Table I (109 gates at
28 qubits).
"""

from __future__ import annotations

import math

from ..circuit import Circuit

__all__ = ["wstate"]


def wstate(num_qubits: int) -> Circuit:
    """Build the ``n``-qubit W-state preparation circuit."""
    if num_qubits < 2:
        raise ValueError("wstate requires at least 2 qubits")
    n = num_qubits
    circuit = Circuit(n, name=f"wstate_{n}")
    circuit.x(n - 1)
    # Cascade of F blocks from qubit n-1 down to 1, distributing amplitude.
    for i in range(n - 1, 0, -1):
        theta = math.acos(math.sqrt(1.0 / (i + 1)))
        # F block: controlled rotation implemented as RY(-θ) · CZ · RY(θ).
        circuit.ry(-theta, i - 1)
        circuit.cz(i, i - 1)
        circuit.ry(theta, i - 1)
    for i in range(n - 1, 0, -1):
        circuit.cx(i - 1, i)
    return circuit

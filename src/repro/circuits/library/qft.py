"""Quantum Fourier transform circuit.

The standard QFT: for each qubit a Hadamard followed by controlled-phase
rotations from every lower qubit.  By default no final swap network is
emitted (bit-reversed output order), which gives exactly ``n(n+1)/2`` gates
and matches the paper's Table I (406 gates at 28 qubits).
"""

from __future__ import annotations

import math

from ..circuit import Circuit

__all__ = ["qft", "inverse_qft"]


def qft(num_qubits: int, with_swaps: bool = False) -> Circuit:
    """Build the ``n``-qubit QFT circuit.

    Parameters
    ----------
    num_qubits:
        Number of qubits.
    with_swaps:
        Emit the final swap network that restores natural qubit order.
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be >= 1")
    circuit = Circuit(num_qubits, name=f"qft_{num_qubits}")
    _append_qft(circuit, list(range(num_qubits)), inverse=False)
    if with_swaps:
        for q in range(num_qubits // 2):
            circuit.swap(q, num_qubits - 1 - q)
    return circuit


def inverse_qft(num_qubits: int, with_swaps: bool = False) -> Circuit:
    """Build the inverse QFT circuit."""
    circuit = Circuit(num_qubits, name=f"iqft_{num_qubits}")
    if with_swaps:
        for q in range(num_qubits // 2):
            circuit.swap(q, num_qubits - 1 - q)
    _append_qft(circuit, list(range(num_qubits)), inverse=True)
    return circuit


def _append_qft(circuit: Circuit, qubits: list[int], inverse: bool) -> None:
    """Append a (possibly inverse) QFT on *qubits* to *circuit* in place."""
    n = len(qubits)
    order = range(n - 1, -1, -1) if not inverse else range(n)
    for j in order:
        if inverse:
            for k in range(j):
                angle = -math.pi / (2 ** (j - k))
                circuit.cp(angle, qubits[j], qubits[k])
            circuit.h(qubits[j])
        else:
            circuit.h(qubits[j])
            for k in range(j - 1, -1, -1):
                angle = math.pi / (2 ** (j - k))
                circuit.cp(angle, qubits[j], qubits[k])


def append_qft(circuit: Circuit, qubits: list[int]) -> None:
    """Append a QFT acting on the listed *qubits* of an existing circuit."""
    _append_qft(circuit, qubits, inverse=False)


def append_inverse_qft(circuit: Circuit, qubits: list[int]) -> None:
    """Append an inverse QFT acting on the listed *qubits*."""
    _append_qft(circuit, qubits, inverse=True)

"""Shared helpers for the circuit library generators.

All generators are deterministic: parameterised circuits (su2random, vqc,
qsvm, ...) draw their angles from a :class:`numpy.random.Generator` seeded
from the circuit family name and qubit count, so repeated calls produce
identical circuits and benchmark results are reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["family_rng", "angles"]


def family_rng(family: str, num_qubits: int, seed: int = 0) -> np.random.Generator:
    """Deterministic RNG derived from the circuit family, size and seed."""
    digest = hashlib.sha256(f"{family}:{num_qubits}:{seed}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def angles(rng: np.random.Generator, count: int) -> np.ndarray:
    """Draw *count* rotation angles uniformly from [0, 2π)."""
    return rng.uniform(0.0, 2.0 * np.pi, size=count)

"""Random circuit generators used by tests and ablation benchmarks.

Two flavours are provided:

* :func:`random_circuit` — a generic random circuit drawing gates uniformly
  from a configurable vocabulary (useful for property-based testing of the
  partitioning algorithms and the simulator).
* :func:`brickwork_circuit` — alternating layers of single-qubit rotations
  and nearest-neighbour two-qubit gates, the "quantum-supremacy-style"
  structure often used to stress state-vector simulators.
"""

from __future__ import annotations

import numpy as np

from ..circuit import Circuit
from ._util import family_rng

__all__ = ["random_circuit", "brickwork_circuit"]

_ONE_QUBIT = ("h", "x", "y", "z", "s", "t", "rx", "ry", "rz", "p", "sx")
_TWO_QUBIT = ("cx", "cz", "cp", "swap", "rzz", "crz")
_PARAMETRIC = {"rx": 1, "ry": 1, "rz": 1, "p": 1, "cp": 1, "rzz": 1, "crz": 1, "u3": 3}


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int = 0,
    two_qubit_fraction: float = 0.4,
    gate_set: tuple[str, ...] | None = None,
) -> Circuit:
    """Build a random circuit with *num_gates* gates.

    Parameters
    ----------
    num_qubits, num_gates:
        Circuit dimensions.
    seed:
        RNG seed (deterministic per ``(num_qubits, num_gates, seed)``).
    two_qubit_fraction:
        Probability of emitting a two-qubit gate at each step.
    gate_set:
        Optional explicit gate vocabulary; defaults to a mixed set.
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be >= 1")
    rng = family_rng("random", num_qubits, seed)
    rng = np.random.default_rng(rng.integers(2**63) + num_gates)
    circuit = Circuit(num_qubits, name=f"random_{num_qubits}_{num_gates}_{seed}")
    for _ in range(num_gates):
        use_two = num_qubits >= 2 and rng.random() < two_qubit_fraction
        if gate_set is not None:
            name = str(rng.choice(gate_set))
            use_two = name in _TWO_QUBIT
        else:
            pool = _TWO_QUBIT if use_two else _ONE_QUBIT
            name = str(rng.choice(pool))
        n_target = 2 if name in _TWO_QUBIT else 1
        qubits = rng.choice(num_qubits, size=n_target, replace=False)
        n_params = _PARAMETRIC.get(name, 0)
        params = rng.uniform(0, 2 * np.pi, size=n_params)
        circuit.add(name, [int(q) for q in qubits], [float(p) for p in params])
    return circuit


def brickwork_circuit(num_qubits: int, depth: int, seed: int = 0) -> Circuit:
    """Build a brickwork (supremacy-style) circuit of the given *depth*."""
    if num_qubits < 2:
        raise ValueError("brickwork requires at least 2 qubits")
    rng = family_rng("brickwork", num_qubits, seed)
    circuit = Circuit(num_qubits, name=f"brickwork_{num_qubits}_{depth}")
    for layer in range(depth):
        for q in range(num_qubits):
            circuit.u3(
                float(rng.uniform(0, np.pi)),
                float(rng.uniform(0, 2 * np.pi)),
                float(rng.uniform(0, 2 * np.pi)),
                q,
            )
        offset = layer % 2
        for q in range(offset, num_qubits - 1, 2):
            circuit.cz(q, q + 1)
    return circuit

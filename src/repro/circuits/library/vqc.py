"""Variational quantum classifier circuit (``vqc``).

A data-encoding ZZ feature map followed by a RealAmplitudes-style
variational ansatz with full entanglement, mirroring MQT-Bench's ``vqc``
family.  The gate count grows as ``Θ(n²)`` (1746 gates at 28 qubits with
the defaults; the paper's Table I lists 1873 for the MQT transpilation).
"""

from __future__ import annotations

from ..circuit import Circuit
from ._util import angles, family_rng

__all__ = ["vqc"]


def vqc(num_qubits: int, feature_reps: int = 1, ansatz_reps: int = 3, seed: int = 0) -> Circuit:
    """Build the VQC circuit: ZZ feature map + RealAmplitudes ansatz."""
    if num_qubits < 2:
        raise ValueError("vqc requires at least 2 qubits")
    rng = family_rng("vqc", num_qubits, seed)
    data = angles(rng, num_qubits)
    weights = angles(rng, num_qubits * (ansatz_reps + 1))
    it = iter(weights)

    circuit = Circuit(num_qubits, name=f"vqc_{num_qubits}")

    # Feature map: full-entanglement second-order Pauli-Z evolution.
    for _ in range(feature_reps):
        for q in range(num_qubits):
            circuit.h(q)
        for q in range(num_qubits):
            circuit.p(2.0 * float(data[q]), q)
        for a in range(num_qubits):
            for b in range(a + 1, num_qubits):
                circuit.cx(a, b)
                circuit.p(2.0 * float(data[a]) * float(data[b]), b)
                circuit.cx(a, b)

    # Variational ansatz: RealAmplitudes with full entanglement.
    for q in range(num_qubits):
        circuit.ry(float(next(it)), q)
    for _ in range(ansatz_reps):
        for a in range(num_qubits):
            for b in range(a + 1, num_qubits):
                circuit.cx(a, b)
        for q in range(num_qubits):
            circuit.ry(float(next(it)), q)
    return circuit

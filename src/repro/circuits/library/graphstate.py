"""Graph-state preparation circuit.

A graph state over graph ``G = (V, E)`` is prepared by a Hadamard on every
vertex followed by a CZ for every edge.  MQT-Bench uses random 3-regular
graphs; to keep gate counts aligned with the paper's Table I (``2n`` gates)
the default graph here is the ``n``-cycle (ring), which has exactly ``n``
edges.  A ``degree`` parameter allows denser random-regular graphs for the
ablation studies.
"""

from __future__ import annotations

import networkx as nx

from ..circuit import Circuit
from ._util import family_rng

__all__ = ["graphstate"]


def graphstate(num_qubits: int, degree: int = 2, seed: int = 0) -> Circuit:
    """Build a graph-state circuit on a ``degree``-regular graph.

    ``degree=2`` (the default) is the ring graph used for the headline
    benchmarks; higher degrees produce denser entanglement structure.
    """
    if num_qubits < 3:
        raise ValueError("graphstate requires at least 3 qubits")
    circuit = Circuit(num_qubits, name=f"graphstate_{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
    if degree == 2:
        edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
    else:
        rng = family_rng("graphstate", num_qubits, seed)
        graph = nx.random_regular_graph(degree, num_qubits, seed=int(rng.integers(2**31)))
        edges = sorted(tuple(sorted(e)) for e in graph.edges())
    for a, b in edges:
        circuit.cz(a, b)
    return circuit

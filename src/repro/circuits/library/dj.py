"""Deutsch–Jozsa circuit with a balanced oracle.

The last qubit is the oracle ancilla.  The balanced oracle flips the
ancilla conditioned on each input qubit (a CX fan-in), the textbook
construction also used by MQT-Bench.  Gate count is ``3n - 2`` for ``n``
qubits (the paper's Table I lists ``3n - 2`` as well: 82 gates at 28
qubits).
"""

from __future__ import annotations

from ..circuit import Circuit

__all__ = ["dj"]


def dj(num_qubits: int) -> Circuit:
    """Build the ``n``-qubit Deutsch–Jozsa circuit (balanced oracle)."""
    if num_qubits < 2:
        raise ValueError("dj requires at least 2 qubits")
    n_inputs = num_qubits - 1
    ancilla = num_qubits - 1
    circuit = Circuit(num_qubits, name=f"dj_{num_qubits}")
    circuit.x(ancilla)
    circuit.h(ancilla)
    for q in range(n_inputs):
        circuit.h(q)
    # Balanced oracle: parity of all inputs.
    for q in range(n_inputs):
        circuit.cx(q, ancilla)
    for q in range(n_inputs):
        circuit.h(q)
    return circuit

"""EfficientSU2 ansatz with random parameters (``su2random``).

The ansatz alternates rotation layers (RY then RZ on every qubit) with
entanglement layers.  MQT-Bench's ``su2random`` uses full (all-to-all)
entanglement and ``reps=3``, which yields ``8n + 3·n(n-1)/2`` gates — the
same order as the paper's Table I (1246 gates at 28 qubits; our
construction gives 1358 because the exact MQT transpilation differs
slightly).
"""

from __future__ import annotations

from ..circuit import Circuit
from ._util import angles, family_rng

__all__ = ["su2random"]


def su2random(num_qubits: int, reps: int = 3, entanglement: str = "full", seed: int = 0) -> Circuit:
    """Build the EfficientSU2 ansatz with random parameters.

    Parameters
    ----------
    num_qubits:
        Number of qubits.
    reps:
        Number of entanglement repetitions (``reps + 1`` rotation layers).
    entanglement:
        ``"full"`` (all pairs) or ``"linear"`` (chain).
    """
    if num_qubits < 2:
        raise ValueError("su2random requires at least 2 qubits")
    rng = family_rng("su2random", num_qubits, seed)
    theta = angles(rng, 2 * num_qubits * (reps + 1))
    it = iter(theta)

    circuit = Circuit(num_qubits, name=f"su2random_{num_qubits}")

    def rotation_layer() -> None:
        for q in range(num_qubits):
            circuit.ry(float(next(it)), q)
        for q in range(num_qubits):
            circuit.rz(float(next(it)), q)

    def entanglement_layer() -> None:
        if entanglement == "full":
            for a in range(num_qubits):
                for b in range(a + 1, num_qubits):
                    circuit.cx(a, b)
        elif entanglement == "linear":
            for a in range(num_qubits - 1):
                circuit.cx(a, a + 1)
        else:
            raise ValueError(f"unknown entanglement pattern {entanglement!r}")

    rotation_layer()
    for _ in range(reps):
        entanglement_layer()
        rotation_layer()
    return circuit

"""Exact quantum phase estimation (``qpeexact``) circuit.

One eigenstate qubit (the last one) holds an eigenvector of a phase gate
``P(2π·φ)`` whose phase ``φ`` is exactly representable with ``n-1`` bits, so
the estimation result is exact.  The circuit is the textbook QPE: Hadamards
on the counting register, controlled powers of the unitary, then an inverse
QFT on the counting register.  Gate count is ``(n-1)(n+4)/2 + 1``.
"""

from __future__ import annotations

import math

from ..circuit import Circuit
from .qft import append_inverse_qft

__all__ = ["qpeexact"]


def qpeexact(num_qubits: int) -> Circuit:
    """Build the exact-QPE circuit on ``n`` qubits (``n-1`` counting qubits)."""
    if num_qubits < 2:
        raise ValueError("qpeexact requires at least 2 qubits")
    n_count = num_qubits - 1
    target = num_qubits - 1
    # Phase exactly representable in n_count bits (avoid 0 so the result is
    # non-trivial): φ = (2^(n_count-1) + 1) / 2^n_count.
    phase_int = (1 << (n_count - 1)) + 1 if n_count > 1 else 1
    phi = phase_int / (1 << n_count)

    circuit = Circuit(num_qubits, name=f"qpeexact_{num_qubits}")
    circuit.x(target)  # prepare the |1> eigenstate of P(θ)
    for q in range(n_count):
        circuit.h(q)
    # Controlled-U^(2^q): U = P(2π φ), so U^(2^q) = P(2π φ 2^q).
    for q in range(n_count):
        angle = 2.0 * math.pi * phi * (2 ** q)
        circuit.cp(angle, q, target)
    # The swap-less QFT used here is bit-reversed on its output, so the
    # inverse is applied on the reversed counting register; the estimate is
    # then read out exactly (in bit-reversed order).
    append_inverse_qft(circuit, list(reversed(range(n_count))))
    return circuit

"""GHZ state preparation circuit.

``|GHZ_n> = (|0...0> + |1...1>)/sqrt(2)`` — one Hadamard followed by a CX
chain, giving exactly ``n`` gates (matches the paper's Table I where the
``ghz`` family has ``n`` gates for ``n`` qubits).
"""

from __future__ import annotations

from ..circuit import Circuit

__all__ = ["ghz"]


def ghz(num_qubits: int) -> Circuit:
    """Build the ``n``-qubit GHZ preparation circuit."""
    if num_qubits < 1:
        raise ValueError("num_qubits must be >= 1")
    circuit = Circuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    return circuit

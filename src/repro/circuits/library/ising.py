"""Trotterized transverse-field Ising model circuit.

First-order Trotter evolution of ``H = -J Σ Z_i Z_{i+1} - h Σ X_i`` on a
1-D chain.  Each Trotter step emits an ``RZZ`` decomposed as
``CX · RZ · CX`` on every nearest-neighbour pair plus an ``RX`` layer, the
construction used by MQT-Bench's ``ising`` family.  With the default three
Trotter steps the gate count is ``3(4n - 3) + n ≈ 13n``, the same order as
the paper's Table I (302 gates at 28 qubits).
"""

from __future__ import annotations

from ..circuit import Circuit
from ._util import family_rng

__all__ = ["ising"]


def ising(num_qubits: int, steps: int = 3, seed: int = 0) -> Circuit:
    """Build a Trotterized 1-D Ising evolution circuit."""
    if num_qubits < 2:
        raise ValueError("ising requires at least 2 qubits")
    rng = family_rng("ising", num_qubits, seed)
    j_coupling = float(rng.uniform(0.5, 1.5))
    h_field = float(rng.uniform(0.5, 1.5))
    dt = 0.1

    circuit = Circuit(num_qubits, name=f"ising_{num_qubits}")
    # Initial transverse-field ground-state-ish preparation.
    for q in range(num_qubits):
        circuit.h(q)
    for _ in range(steps):
        for q in range(num_qubits - 1):
            circuit.cx(q, q + 1)
            circuit.rz(2.0 * j_coupling * dt, q + 1)
            circuit.cx(q, q + 1)
        for q in range(num_qubits):
            circuit.rx(2.0 * h_field * dt, q)
    return circuit

"""HHL (Harrow–Hassidim–Lloyd) linear-system solver circuit.

This is the NWQBench-style circuit used in the paper's Appendix C case
study (Table II, Figures 25/37): its gate count grows *exponentially* with
the number of qubits because the controlled Hamiltonian-evolution power
``C-U^(2^k)`` in the phase-estimation step is emitted as ``2^k`` repetitions
of a Trotterised evolution block rather than being collapsed analytically.
That property (|gates| ≫ |qubits|) is exactly what stresses the
kernelization algorithms, so we reproduce it here.

Layout: qubit 0 is the ancilla rotation qubit, qubits ``1..n_clock`` form
the clock register, and the remaining qubits hold the state register |b>.
"""

from __future__ import annotations

import math

from ..circuit import Circuit
from .qft import append_inverse_qft, append_qft

__all__ = ["hhl"]


def _evolution_block(circuit: Circuit, control: int, state_qubits: list[int], t: float) -> None:
    """One controlled Trotter block of exp(-iHt) for a 1-D XX+Z Hamiltonian."""
    for q in state_qubits:
        circuit.crz(2.0 * t, control, q)
    for a, b in zip(state_qubits, state_qubits[1:]):
        circuit.cx(a, b)
        circuit.crz(1.5 * t, control, b)
        circuit.cx(a, b)


def hhl(num_qubits: int, clock_fraction: float = 0.6) -> Circuit:
    """Build an HHL circuit on ``num_qubits`` qubits.

    The clock register takes roughly ``clock_fraction`` of the non-ancilla
    qubits.  Gate count grows as ``Θ(2^n_clock)``.
    """
    if num_qubits < 4:
        raise ValueError("hhl requires at least 4 qubits")
    n_clock = max(2, int(round((num_qubits - 1) * clock_fraction)))
    n_state = num_qubits - 1 - n_clock
    if n_state < 1:
        n_clock = num_qubits - 2
        n_state = 1
    ancilla = 0
    clock = list(range(1, 1 + n_clock))
    state = list(range(1 + n_clock, num_qubits))

    circuit = Circuit(num_qubits, name=f"hhl_{num_qubits}")
    # Prepare |b>.
    for q in state:
        circuit.h(q)
    # Phase estimation.
    for c in clock:
        circuit.h(c)
    t0 = 2.0 * math.pi / (2 ** n_clock)
    for k, c in enumerate(clock):
        reps = 2 ** k
        for _ in range(reps):
            _evolution_block(circuit, c, state, t0)
    append_inverse_qft(circuit, clock)
    # Controlled ancilla rotations (eigenvalue inversion).
    for k, c in enumerate(clock):
        angle = 2.0 * math.asin(min(1.0, 1.0 / (2 ** (n_clock - k))))
        circuit.cry(angle, c, ancilla)
    # Uncompute phase estimation.
    append_qft(circuit, clock)
    for k, c in enumerate(reversed(clock)):
        reps = 2 ** (n_clock - 1 - k)
        for _ in range(reps):
            _evolution_block(circuit, c, state, -t0)
    for c in clock:
        circuit.h(c)
    return circuit


def hhl_padded(num_qubits: int, total_qubits: int) -> Circuit:
    """HHL circuit padded with idle qubits up to *total_qubits*.

    The paper pads the hhl circuits to 28 qubits so the kernelizer targets
    GPU execution rather than collapsing the whole circuit into one matrix.
    """
    base = hhl(num_qubits)
    if total_qubits < base.num_qubits:
        raise ValueError("total_qubits must be >= the hhl circuit size")
    padded = Circuit(total_qubits, name=f"hhl_{num_qubits}_pad{total_qubits}")
    for gate in base:
        padded.append(gate)
    return padded

"""Amplitude estimation circuit.

Canonical (QPE-based) amplitude estimation on a single-qubit Bernoulli
state preparation ``A = RY(θ_p)``: ``n-1`` evaluation qubits control powers
of the Grover operator ``Q = A S_0 A† S_χ`` and an inverse QFT reads out the
amplitude.  Each controlled ``Q^(2^k)`` is emitted as ``2^k`` controlled-Q
blocks for small ``k`` and collapsed to an equivalent controlled rotation
for large ``k`` (``Q`` acting on one qubit is a rotation, so its powers are
rotations), keeping the gate count of the same order as MQT-Bench's ``ae``
family (~``n(n+1)/2 + O(n)`` gates).
"""

from __future__ import annotations

import math

from ..circuit import Circuit
from .qft import append_inverse_qft

__all__ = ["ae"]

#: Probability encoded by the state-preparation operator A = RY(theta_p).
_DEFAULT_PROBABILITY = 0.2


def ae(num_qubits: int, probability: float = _DEFAULT_PROBABILITY) -> Circuit:
    """Build the ``n``-qubit amplitude-estimation circuit."""
    if num_qubits < 2:
        raise ValueError("ae requires at least 2 qubits")
    if not 0.0 < probability < 1.0:
        raise ValueError("probability must be in (0, 1)")
    n_eval = num_qubits - 1
    objective = num_qubits - 1
    theta_p = 2.0 * math.asin(math.sqrt(probability))
    # On a single objective qubit the Grover operator Q is a rotation by 2θ_p.
    grover_angle = 2.0 * theta_p

    circuit = Circuit(num_qubits, name=f"ae_{num_qubits}")
    circuit.ry(theta_p, objective)
    for q in range(n_eval):
        circuit.h(q)
    for k in range(n_eval):
        power = 2 ** k
        if power <= 4:
            # Explicit repeated controlled-Q applications (controlled RY + phase).
            for _ in range(power):
                circuit.cry(grover_angle, k, objective)
                circuit.cz(k, objective)
        else:
            # Collapse the rotation power; keep a pair of gates so the
            # entangling structure (evaluation qubit ↔ objective) is preserved.
            circuit.cry(grover_angle * power, k, objective)
            circuit.cz(k, objective)
    # Bit-reversed readout convention (see qpe.py).
    append_inverse_qft(circuit, list(reversed(range(n_eval))))
    return circuit

"""Circuit intermediate representation and benchmark circuit library."""

from .circuit import Circuit, CircuitStats
from .gates import Gate, gate_matrix, make_gate
from .qasm import from_qasm, to_qasm

__all__ = [
    "Circuit",
    "CircuitStats",
    "Gate",
    "gate_matrix",
    "make_gate",
    "from_qasm",
    "to_qasm",
]

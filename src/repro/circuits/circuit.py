"""Circuit intermediate representation.

A :class:`Circuit` is an ordered sequence of :class:`~repro.circuits.gates.Gate`
objects over ``num_qubits`` logical qubits.  The staging and kernelization
algorithms treat the circuit as a gate sequence with a dependency relation
``E`` given by *adjacent gate pairs on the same qubit* (the paper's Section
IV notation), so this module also provides dependency-graph construction and
topological-equivalence checks used by the kernelizer's correctness tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

from .gates import Gate, make_gate

__all__ = ["Circuit", "CircuitStats"]


@dataclass
class CircuitStats:
    """Summary statistics for a circuit."""

    num_qubits: int
    num_gates: int
    num_two_qubit_gates: int
    num_multi_qubit_gates: int
    depth: int

    def as_dict(self) -> dict:
        return {
            "num_qubits": self.num_qubits,
            "num_gates": self.num_gates,
            "num_two_qubit_gates": self.num_two_qubit_gates,
            "num_multi_qubit_gates": self.num_multi_qubit_gates,
            "depth": self.depth,
        }


class Circuit:
    """An ordered quantum circuit over ``num_qubits`` logical qubits.

    The class exposes a small builder API (``circuit.h(0)``,
    ``circuit.cx(0, 1)``, ...) used by the circuit library generators, plus
    the structural queries needed by the Atlas partitioning algorithms.
    """

    def __init__(self, num_qubits: int, gates: Iterable[Gate] = (), name: str = "circuit"):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: list[Gate] = []
        for g in gates:
            self.append(g)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    @property
    def gates(self) -> list[Gate]:
        return self._gates

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return Circuit(self.num_qubits, self._gates[idx], name=self.name)
        return self._gates[idx]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._gates == other._gates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Circuit {self.name!r}: {self.num_qubits} qubits, {len(self)} gates>"

    # ------------------------------------------------------------------
    # Builder API
    # ------------------------------------------------------------------

    def append(self, gate: Gate) -> "Circuit":
        """Append *gate* after validating its qubit indices."""
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"gate {gate} uses qubit {q} outside range [0, {self.num_qubits})"
                )
        self._gates.append(gate)
        return self

    def add(self, name: str, qubits: Iterable[int], params: Iterable[float] = ()) -> "Circuit":
        return self.append(make_gate(name, qubits, params))

    # Single-qubit conveniences -----------------------------------------------
    def h(self, q: int) -> "Circuit":
        return self.add("h", [q])

    def x(self, q: int) -> "Circuit":
        return self.add("x", [q])

    def y(self, q: int) -> "Circuit":
        return self.add("y", [q])

    def z(self, q: int) -> "Circuit":
        return self.add("z", [q])

    def s(self, q: int) -> "Circuit":
        return self.add("s", [q])

    def sdg(self, q: int) -> "Circuit":
        return self.add("sdg", [q])

    def t(self, q: int) -> "Circuit":
        return self.add("t", [q])

    def tdg(self, q: int) -> "Circuit":
        return self.add("tdg", [q])

    def sx(self, q: int) -> "Circuit":
        return self.add("sx", [q])

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.add("rx", [q], [theta])

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.add("ry", [q], [theta])

    def rz(self, theta: float, q: int) -> "Circuit":
        return self.add("rz", [q], [theta])

    def p(self, theta: float, q: int) -> "Circuit":
        return self.add("p", [q], [theta])

    def u3(self, theta: float, phi: float, lam: float, q: int) -> "Circuit":
        return self.add("u3", [q], [theta, phi, lam])

    # Multi-qubit conveniences -------------------------------------------------
    # Note: Gate stores (targets..., controls...), so cx(control, target)
    # becomes Gate("cx", (target, control)).
    def cx(self, control: int, target: int) -> "Circuit":
        return self.add("cx", [target, control])

    def cy(self, control: int, target: int) -> "Circuit":
        return self.add("cy", [target, control])

    def cz(self, control: int, target: int) -> "Circuit":
        return self.add("cz", [target, control])

    def ch(self, control: int, target: int) -> "Circuit":
        return self.add("ch", [target, control])

    def cp(self, theta: float, control: int, target: int) -> "Circuit":
        return self.add("cp", [target, control], [theta])

    def crx(self, theta: float, control: int, target: int) -> "Circuit":
        return self.add("crx", [target, control], [theta])

    def cry(self, theta: float, control: int, target: int) -> "Circuit":
        return self.add("cry", [target, control], [theta])

    def crz(self, theta: float, control: int, target: int) -> "Circuit":
        return self.add("crz", [target, control], [theta])

    def swap(self, q0: int, q1: int) -> "Circuit":
        return self.add("swap", [q0, q1])

    def rzz(self, theta: float, q0: int, q1: int) -> "Circuit":
        return self.add("rzz", [q0, q1], [theta])

    def rxx(self, theta: float, q0: int, q1: int) -> "Circuit":
        return self.add("rxx", [q0, q1], [theta])

    def ryy(self, theta: float, q0: int, q1: int) -> "Circuit":
        return self.add("ryy", [q0, q1], [theta])

    def ccx(self, c0: int, c1: int, target: int) -> "Circuit":
        return self.add("ccx", [target, c0, c1])

    def cswap(self, control: int, q0: int, q1: int) -> "Circuit":
        return self.add("cswap", [q0, q1, control])

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    def qubits_used(self) -> set[int]:
        """Set of qubits touched by at least one gate."""
        used: set[int] = set()
        for g in self._gates:
            used.update(g.qubits)
        return used

    def depth(self) -> int:
        """Circuit depth (longest chain of dependent gates)."""
        frontier = [0] * self.num_qubits
        for g in self._gates:
            level = 1 + max(frontier[q] for q in g.qubits)
            for q in g.qubits:
                frontier[q] = level
        return max(frontier) if self._gates else 0

    def stats(self) -> CircuitStats:
        two = sum(1 for g in self._gates if g.num_qubits == 2)
        multi = sum(1 for g in self._gates if g.num_qubits >= 2)
        return CircuitStats(
            num_qubits=self.num_qubits,
            num_gates=len(self._gates),
            num_two_qubit_gates=two,
            num_multi_qubit_gates=multi,
            depth=self.depth(),
        )

    def structural_key(self) -> str:
        """Hex fingerprint of the circuit's *partitioning-relevant* structure.

        Two circuits share a structural key exactly when the staging and
        kernelization algorithms would make identical decisions for them:
        same qubit count, same gate sequence (names and qubit tuples), and —
        for parameterized gates — the same matrix *sparsity pattern*.  Gate
        angles are deliberately excluded: ``rx(0.3)`` and ``rx(0.7)`` hash
        identically (a VQC/QSVM parameter sweep is one structure), while
        ``rx(pi)`` hashes differently because its matrix collapses to an
        anti-diagonal, which changes insularity (Definition 2) and therefore
        staging.  The sparsity pattern also determines the per-axis
        diagonal/anti-diagonal classification the offload runtime segments
        stages by, so plans and stage schedules cached under this key can be
        replayed for any circuit that shares it.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(self.num_qubits.to_bytes(4, "little"))
        for g in self._gates:
            h.update(b"|")
            h.update(g.name.encode())
            h.update(np.asarray(g.qubits, dtype=np.int32).tobytes())
            if g.params:
                # The boolean non-zero pattern of the unitary: invariant
                # across generic angles, distinct for structure-changing
                # special angles (0, pi, ...).
                pattern = np.abs(g.matrix()) > 1e-12
                h.update(np.packbits(pattern.reshape(-1)).tobytes())
        return h.hexdigest()

    def canonical_relabeling(self) -> dict[int, int]:
        """Mapping of each logical qubit to its *first-use order* position.

        Qubits are numbered by the order in which the gate sequence first
        touches them; qubits no gate touches keep their relative order after
        all used ones.  Two circuits that differ only by a qubit relabeling
        map onto the same canonical labels, which is what makes
        :meth:`canonical_structural_key` relabel-invariant.
        """
        mapping: dict[int, int] = {}
        for g in self._gates:
            for q in g.qubits:
                if q not in mapping:
                    mapping[q] = len(mapping)
        for q in range(self.num_qubits):
            if q not in mapping:
                mapping[q] = len(mapping)
        return mapping

    def canonical_structural_key(self) -> tuple[str, dict[int, int]]:
        """Qubit-relabel-invariant structural fingerprint.

        Returns ``(key, mapping)`` where *mapping* is this circuit's
        :meth:`canonical_relabeling` and *key* is the
        :meth:`structural_key` of the circuit rewritten into canonical
        labels.  Circuits submitted by different users that are the same
        computation on permuted qubits share one canonical key — the
        cross-tenant plan cache (:mod:`repro.service.persistence`) keys on
        it, and uses *mapping* to relabel the shared plan back into each
        submitter's labels.
        """
        mapping = self.canonical_relabeling()
        if all(q == p for q, p in mapping.items()):
            return self.structural_key(), mapping
        return self.remap_qubits(mapping).structural_key(), mapping

    def content_key(self) -> str:
        """Hex fingerprint of the *full* circuit content, parameters included.

        Unlike :meth:`structural_key` (which deliberately ignores rotation
        angles so a parameter sweep is one structure), two circuits share a
        content key exactly when they run the same gates with the same
        parameters on the same qubits — the dedup condition for identical
        batch submissions (:meth:`repro.service.SimulationService.submit_many`).
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(self.num_qubits.to_bytes(4, "little"))
        for g in self._gates:
            h.update(b"|")
            h.update(g.name.encode())
            h.update(np.asarray(g.qubits, dtype=np.int32).tobytes())
            if g.params:
                h.update(np.asarray(g.params, dtype=np.float64).tobytes())
        return h.hexdigest()

    def dependency_edges(self) -> list[tuple[int, int]]:
        """Adjacent-gate dependency pairs ``E`` (paper Section IV).

        Returns edges ``(i, j)`` with ``i < j`` such that gate ``j`` is the
        *next* gate acting on some qubit also acted on by gate ``i``.
        """
        last_on_qubit: dict[int, int] = {}
        edges: set[tuple[int, int]] = set()
        for j, g in enumerate(self._gates):
            for q in g.qubits:
                i = last_on_qubit.get(q)
                if i is not None:
                    edges.add((i, j))
                last_on_qubit[q] = j
        return sorted(edges)

    def dependency_graph(self) -> nx.DiGraph:
        """Gate dependency DAG with node indices 0..len-1."""
        dag = nx.DiGraph()
        dag.add_nodes_from(range(len(self._gates)))
        dag.add_edges_from(self.dependency_edges())
        return dag

    def is_topologically_equivalent(self, order: Sequence[int]) -> bool:
        """Check whether the gate index permutation *order* respects dependencies.

        Two sequences are topologically equivalent when every pair of gates
        sharing a qubit appears in the same relative order.
        """
        if sorted(order) != list(range(len(self._gates))):
            return False
        position = {gate_idx: pos for pos, gate_idx in enumerate(order)}
        for i, j in self.dependency_edges():
            if position[i] > position[j]:
                return False
        return True

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def copy(self) -> "Circuit":
        return Circuit(self.num_qubits, list(self._gates), name=self.name)

    def remap_qubits(self, mapping: dict[int, int], num_qubits: int | None = None) -> "Circuit":
        """Return a circuit with logical qubits renamed through *mapping*."""
        n = num_qubits if num_qubits is not None else self.num_qubits
        out = Circuit(n, name=self.name)
        for g in self._gates:
            out.append(g.remap(mapping))
        return out

    def inverse(self) -> "Circuit":
        """Return the inverse circuit (dagger of every gate, reverse order).

        Only gates whose inverse exists in the gate vocabulary are supported;
        parameterised rotations invert by negating their angle.
        """
        inv_const = {
            "id": "id", "x": "x", "y": "y", "z": "z", "h": "h",
            "s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t",
            "cx": "cx", "cy": "cy", "cz": "cz", "ch": "ch",
            "swap": "swap", "ccx": "ccx", "ccz": "ccz", "cswap": "cswap",
        }
        neg_param = {"rx", "ry", "rz", "p", "u1", "cp", "cu1", "crx", "cry",
                     "crz", "rzz", "rxx", "ryy"}
        out = Circuit(self.num_qubits, name=self.name + "_inv")
        for g in reversed(self._gates):
            if g.name in inv_const:
                out.append(Gate(inv_const[g.name], g.qubits))
            elif g.name in neg_param:
                out.append(Gate(g.name, g.qubits, tuple(-p for p in g.params)))
            elif g.name in ("u3", "u"):
                theta, phi, lam = g.params
                out.append(Gate("u3", g.qubits, (-theta, -lam, -phi)))
            elif g.name == "sx":
                out.append(Gate("u3", g.qubits, (-np.pi / 2, np.pi / 2, -np.pi / 2)))
            else:
                raise ValueError(f"cannot invert gate {g.name!r}")
        return out

    def compose(self, other: "Circuit") -> "Circuit":
        """Concatenate *other* after this circuit (qubit counts must match)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit counts differ")
        out = self.copy()
        for g in other:
            out.append(g)
        return out

    def subcircuit(self, gate_indices: Sequence[int]) -> "Circuit":
        """Circuit with only the gates at *gate_indices* (in the given order)."""
        out = Circuit(self.num_qubits, name=self.name)
        for i in gate_indices:
            out.append(self._gates[i])
        return out

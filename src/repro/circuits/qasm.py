"""Minimal OpenQASM 2.0 reader / writer.

The MQT-Bench and NWQBench suites distribute circuits as OpenQASM 2.0
files.  This module implements the subset of OpenQASM 2.0 required to
round-trip all circuits produced by :mod:`repro.circuits.library`:

* a single quantum register (``qreg q[n];``),
* classical registers and ``measure``/``barrier`` statements (ignored on
  read, since state-vector simulation does not collapse the state),
* the standard-library gates listed in :data:`repro.circuits.gates.GATE_SPECS`,
* constant-folded parameter expressions built from ``pi``, numbers and the
  operators ``+ - * /`` and unary minus.

The writer emits targets/controls in the conventional OpenQASM ordering
(controls first), undoing the internal ``(targets..., controls...)``
ordering used by :class:`~repro.circuits.gates.Gate`.
"""

from __future__ import annotations

import ast
import math
import re
from typing import Iterable

from .circuit import Circuit
from .gates import GATE_SPECS, Gate

__all__ = ["to_qasm", "from_qasm", "QasmError"]


class QasmError(ValueError):
    """Raised when a QASM document cannot be parsed."""


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------

# Internal order is (targets..., controls...); QASM order is (controls..., targets...).
def _qasm_qubit_order(gate: Gate) -> tuple[int, ...]:
    nc = gate.spec.num_controls
    if nc == 0:
        return gate.qubits
    targets = gate.qubits[:-nc]
    controls = gate.qubits[-nc:]
    return controls + targets


def to_qasm(circuit: Circuit) -> str:
    """Serialise *circuit* to an OpenQASM 2.0 string."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for gate in circuit:
        name = gate.name
        if name == "p":
            name = "u1"  # qelib1 spelling
        if gate.params:
            params = ",".join(_format_param(p) for p in gate.params)
            head = f"{name}({params})"
        else:
            head = name
        qubits = ",".join(f"q[{q}]" for q in _qasm_qubit_order(gate))
        lines.append(f"{head} {qubits};")
    return "\n".join(lines) + "\n"


def _format_param(value: float) -> str:
    for mult in (1, 2, 4, 8, 16):
        if abs(value - math.pi / mult) < 1e-12:
            return "pi" if mult == 1 else f"pi/{mult}"
        if abs(value + math.pi / mult) < 1e-12:
            return "-pi" if mult == 1 else f"-pi/{mult}"
    return repr(float(value))


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------

_STATEMENT_RE = re.compile(r"([^;]*);")
_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_CREG_RE = re.compile(r"creg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_GATE_RE = re.compile(r"^(\w+)\s*(?:\(([^)]*)\))?\s*(.*)$")
_QUBIT_RE = re.compile(r"(\w+)\s*\[\s*(\d+)\s*\]")

_ALIASES = {"u1": "p", "cu1": "cp", "cnot": "cx", "toffoli": "ccx", "id": "id", "u": "u3"}


def _eval_param(expr: str) -> float:
    """Constant-fold a QASM parameter expression (numbers, pi, + - * /)."""
    expr = expr.strip().replace("pi", repr(math.pi))
    try:
        node = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise QasmError(f"cannot parse parameter expression {expr!r}") from exc

    def ev(n):
        if isinstance(n, ast.Expression):
            return ev(n.body)
        if isinstance(n, ast.Constant) and isinstance(n.value, (int, float)):
            return float(n.value)
        if isinstance(n, ast.BinOp) and isinstance(n.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
            left, right = ev(n.left), ev(n.right)
            if isinstance(n.op, ast.Add):
                return left + right
            if isinstance(n.op, ast.Sub):
                return left - right
            if isinstance(n.op, ast.Mult):
                return left * right
            return left / right
        if isinstance(n, ast.UnaryOp) and isinstance(n.op, (ast.USub, ast.UAdd)):
            value = ev(n.operand)
            return -value if isinstance(n.op, ast.USub) else value
        raise QasmError(f"unsupported expression node in {expr!r}")

    return ev(node)


def from_qasm(text: str, name: str = "qasm_circuit") -> Circuit:
    """Parse an OpenQASM 2.0 document into a :class:`Circuit`."""
    # Strip comments.
    text = re.sub(r"//[^\n]*", "", text)
    statements = [s.strip() for s in _STATEMENT_RE.findall(text) if s.strip()]

    num_qubits = None
    qreg_name = "q"
    circuit: Circuit | None = None
    pending: list[tuple[str, list[float], list[int]]] = []

    for stmt in statements:
        low = stmt.lower()
        if low.startswith("openqasm") or low.startswith("include"):
            continue
        if low.startswith("qreg"):
            m = _QREG_RE.search(stmt)
            if not m:
                raise QasmError(f"malformed qreg statement: {stmt!r}")
            if num_qubits is not None:
                raise QasmError("multiple quantum registers are not supported")
            qreg_name, num_qubits = m.group(1), int(m.group(2))
            circuit = Circuit(num_qubits, name=name)
            for gname, params, qubits in pending:
                _append_gate(circuit, gname, params, qubits)
            pending.clear()
            continue
        if low.startswith("creg") or low.startswith("measure") or low.startswith("barrier"):
            continue
        if low.startswith("gate ") or low.startswith("if"):
            raise QasmError(f"unsupported QASM construct: {stmt.split()[0]!r}")

        m = _GATE_RE.match(stmt)
        if not m:
            raise QasmError(f"cannot parse statement: {stmt!r}")
        gate_name = m.group(1).lower()
        params = [_eval_param(p) for p in m.group(2).split(",")] if m.group(2) else []
        qubit_tokens = _QUBIT_RE.findall(m.group(3))
        if not qubit_tokens:
            raise QasmError(f"statement has no qubit operands: {stmt!r}")
        qubits = [int(idx) for reg, idx in qubit_tokens]

        if circuit is None:
            pending.append((gate_name, params, qubits))
        else:
            _append_gate(circuit, gate_name, params, qubits)

    if circuit is None:
        raise QasmError("no quantum register declared")
    return circuit


def _append_gate(circuit: Circuit, name: str, params: Iterable[float], qubits: list[int]) -> None:
    name = _ALIASES.get(name, name)
    if name not in GATE_SPECS:
        raise QasmError(f"unsupported gate {name!r}")
    spec = GATE_SPECS[name]
    if len(qubits) != spec.num_qubits:
        raise QasmError(
            f"gate {name!r} expects {spec.num_qubits} qubits, got {len(qubits)}"
        )
    # QASM lists controls first; internal order is (targets..., controls...).
    nc = spec.num_controls
    if nc:
        controls, targets = qubits[:nc], qubits[nc:]
        ordered = tuple(targets + controls)
    else:
        ordered = tuple(qubits)
    circuit.append(Gate(name, ordered, tuple(params)))

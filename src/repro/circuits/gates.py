"""Quantum gate definitions.

This module provides the gate vocabulary used throughout the Atlas
reproduction: every gate knows its unitary matrix, which of its qubits are
*insular* (Definition 2 of the paper), and whether it is diagonal or
anti-diagonal.  Insularity is the key property exploited by the staging
algorithm: insular qubits may be mapped to regional/global physical qubits
without incurring communication, because each output amplitude depends on a
single input amplitude along that qubit axis.

Gate matrices follow the little-endian qubit convention used by the rest of
the package: ``qubits[0]`` is the least-significant qubit of the matrix
index.  For a controlled gate the control qubits come *after* the target
qubits in the matrix ordering (the matrix is built as
``|1..1><1..1| (x) U + rest (x) I``), matching :func:`controlled_matrix`.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_SPECS",
    "gate_matrix",
    "controlled_matrix",
    "is_diagonal",
    "is_antidiagonal",
    "make_gate",
    "SUPPORTED_GATES",
]


# ---------------------------------------------------------------------------
# Elementary matrices
# ---------------------------------------------------------------------------

_SQ2 = 1.0 / math.sqrt(2.0)

_I2 = np.eye(2, dtype=np.complex128)
_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
_Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
_H = np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=np.complex128)
_S = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
_SDG = np.array([[1, 0], [0, -1j]], dtype=np.complex128)
_T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=np.complex128)
_TDG = np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=np.complex128)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=np.complex128)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def _rz(theta: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]],
        dtype=np.complex128,
    )


def _p(theta: float) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * theta)]], dtype=np.complex128)


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=np.complex128,
    )


def _u2(phi: float, lam: float) -> np.ndarray:
    return _u3(math.pi / 2, phi, lam)


def _rzz(theta: float) -> np.ndarray:
    e_m = cmath.exp(-1j * theta / 2)
    e_p = cmath.exp(1j * theta / 2)
    return np.diag([e_m, e_p, e_p, e_m]).astype(np.complex128)


def _rxx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    m = np.eye(4, dtype=np.complex128) * c
    m[0, 3] = m[3, 0] = m[1, 2] = m[2, 1] = -1j * s
    return m


def _ryy(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    m = np.eye(4, dtype=np.complex128) * c
    m[0, 3] = m[3, 0] = 1j * s
    m[1, 2] = m[2, 1] = -1j * s
    return m


_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=np.complex128
)


def controlled_matrix(base: np.ndarray, num_controls: int = 1) -> np.ndarray:
    """Build the matrix of a controlled-U gate.

    The target qubits occupy the least-significant positions of the matrix
    index and the control qubits the most-significant ones, so the gate acts
    on the qubit tuple ``(*targets, *controls)``.

    Parameters
    ----------
    base:
        Unitary matrix of the underlying gate ``U`` (shape ``2^t × 2^t``).
    num_controls:
        Number of control qubits to add.

    Returns
    -------
    numpy.ndarray
        The ``2^(t+c) × 2^(t+c)`` controlled-U matrix.
    """
    dim_t = base.shape[0]
    dim = dim_t * (2 ** num_controls)
    out = np.eye(dim, dtype=np.complex128)
    # Controls are the high bits; the "all controls |1>" block is the last
    # dim_t × dim_t diagonal block.
    out[dim - dim_t :, dim - dim_t :] = base
    return out


def is_diagonal(matrix: np.ndarray, atol: float = 1e-12) -> bool:
    """Return True if *matrix* is diagonal (all off-diagonal entries ~ 0)."""
    return bool(np.allclose(matrix, np.diag(np.diag(matrix)), atol=atol))


def is_antidiagonal(matrix: np.ndarray, atol: float = 1e-12) -> bool:
    """Return True if *matrix* is anti-diagonal (non-zeros only on the anti-diagonal)."""
    flipped = np.fliplr(matrix)
    return bool(np.allclose(flipped, np.diag(np.diag(flipped)), atol=atol))


# ---------------------------------------------------------------------------
# Gate specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes
    ----------
    name:
        Canonical lowercase gate name (OpenQASM-compatible where possible).
    num_qubits:
        Number of qubits the gate acts on.
    num_params:
        Number of real parameters.
    num_controls:
        Number of control qubits (always the trailing qubits of the gate's
        qubit tuple).  Control qubits are insular (Definition 2).
    matrix_fn:
        Callable mapping the parameter tuple to the unitary matrix.
    """

    name: str
    num_qubits: int
    num_params: int
    num_controls: int
    matrix_fn: object

    def matrix(self, params: Sequence[float] = ()) -> np.ndarray:
        if len(params) != self.num_params:
            raise ValueError(
                f"gate {self.name!r} expects {self.num_params} parameters, "
                f"got {len(params)}"
            )
        return self.matrix_fn(*params)


def _const(matrix: np.ndarray):
    def fn() -> np.ndarray:
        return matrix

    return fn


GATE_SPECS: dict[str, GateSpec] = {}


def _register(name: str, num_qubits: int, num_params: int, num_controls: int, fn) -> None:
    GATE_SPECS[name] = GateSpec(name, num_qubits, num_params, num_controls, fn)


# Single-qubit constant gates.
_register("id", 1, 0, 0, _const(_I2))
_register("x", 1, 0, 0, _const(_X))
_register("y", 1, 0, 0, _const(_Y))
_register("z", 1, 0, 0, _const(_Z))
_register("h", 1, 0, 0, _const(_H))
_register("s", 1, 0, 0, _const(_S))
_register("sdg", 1, 0, 0, _const(_SDG))
_register("t", 1, 0, 0, _const(_T))
_register("tdg", 1, 0, 0, _const(_TDG))
_register("sx", 1, 0, 0, _const(_SX))
# Single-qubit parameterised gates.
_register("rx", 1, 1, 0, _rx)
_register("ry", 1, 1, 0, _ry)
_register("rz", 1, 1, 0, _rz)
_register("p", 1, 1, 0, _p)
_register("u1", 1, 1, 0, _p)
_register("u2", 1, 2, 0, _u2)
_register("u3", 1, 3, 0, _u3)
_register("u", 1, 3, 0, _u3)
# Two-qubit gates: target first, control last.
_register("cx", 2, 0, 1, lambda: controlled_matrix(_X))
_register("cy", 2, 0, 1, lambda: controlled_matrix(_Y))
_register("cz", 2, 0, 1, lambda: controlled_matrix(_Z))
_register("ch", 2, 0, 1, lambda: controlled_matrix(_H))
_register("cp", 2, 1, 1, lambda theta: controlled_matrix(_p(theta)))
_register("cu1", 2, 1, 1, lambda theta: controlled_matrix(_p(theta)))
_register("crx", 2, 1, 1, lambda theta: controlled_matrix(_rx(theta)))
_register("cry", 2, 1, 1, lambda theta: controlled_matrix(_ry(theta)))
_register("crz", 2, 1, 1, lambda theta: controlled_matrix(_rz(theta)))
_register("swap", 2, 0, 0, _const(_SWAP))
_register("rzz", 2, 1, 0, _rzz)
_register("rxx", 2, 1, 0, _rxx)
_register("ryy", 2, 1, 0, _ryy)
# Three-qubit gates.
_register("ccx", 3, 0, 2, lambda: controlled_matrix(_X, 2))
_register("ccz", 3, 0, 2, lambda: controlled_matrix(_Z, 2))
_register("cswap", 3, 0, 1, lambda: controlled_matrix(_SWAP, 1))

SUPPORTED_GATES = tuple(sorted(GATE_SPECS))


@lru_cache(maxsize=65536)
def _cached_matrix(name: str, params: tuple[float, ...]) -> np.ndarray:
    spec = GATE_SPECS[name]
    matrix = spec.matrix(params)
    matrix.setflags(write=False)
    return matrix


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the unitary matrix of gate *name* with the given parameters.

    Matrices are cached by ``(name, params)`` and returned as read-only
    arrays; callers that need to mutate the result must copy it.
    """
    if name not in GATE_SPECS:
        raise ValueError(f"unsupported gate {name!r}")
    return _cached_matrix(name, tuple(params))


@lru_cache(maxsize=65536)
def _cached_structure(name: str, params: tuple[float, ...]) -> tuple[bool, bool]:
    """(is_diagonal, is_antidiagonal) of the gate's full matrix, cached."""
    matrix = _cached_matrix(name, params)
    return is_diagonal(matrix), is_antidiagonal(matrix)


@lru_cache(maxsize=65536)
def _cached_diagonal(name: str, params: tuple[float, ...]) -> np.ndarray:
    """Diagonal entries of the gate's matrix as a cached read-only array."""
    diagonal = np.ascontiguousarray(np.diag(_cached_matrix(name, params)))
    diagonal.setflags(write=False)
    return diagonal


# ---------------------------------------------------------------------------
# Gate instances
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Gate:
    """A gate applied to specific qubits of a circuit.

    Attributes
    ----------
    name:
        Gate type name (must appear in :data:`GATE_SPECS`).
    qubits:
        Tuple of logical qubit indices the gate acts on.  For controlled
        gates the targets come first and the controls last, matching the
        matrix ordering of :func:`controlled_matrix`.
    params:
        Tuple of real gate parameters.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        spec = GATE_SPECS.get(self.name)
        if spec is None:
            raise ValueError(f"unsupported gate {self.name!r}")
        if len(self.qubits) != spec.num_qubits:
            raise ValueError(
                f"gate {self.name!r} acts on {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name!r} has duplicate qubits {self.qubits}")
        if len(self.params) != spec.num_params:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_params} parameters, "
                f"got {len(self.params)}"
            )

    # -- basic properties ---------------------------------------------------

    @property
    def spec(self) -> GateSpec:
        return GATE_SPECS[self.name]

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def matrix(self) -> np.ndarray:
        """Unitary matrix of this gate (little-endian over ``self.qubits``).

        The returned array is a cached, read-only instance shared between
        equal gates; copy it before mutating.
        """
        return _cached_matrix(self.name, self.params)

    def diagonal(self) -> np.ndarray:
        """Diagonal entries of this gate's matrix (cached, read-only).

        Only meaningful when :meth:`is_diagonal` is true; used by the
        simulator's in-place diagonal fast path.
        """
        return _cached_diagonal(self.name, self.params)

    # -- insularity (Definition 2) -------------------------------------------

    @property
    def control_qubits(self) -> tuple[int, ...]:
        """The control qubits (trailing qubits) of a controlled gate."""
        nc = self.spec.num_controls
        if nc == 0:
            return ()
        return self.qubits[-nc:]

    @property
    def target_qubits(self) -> tuple[int, ...]:
        nc = self.spec.num_controls
        if nc == 0:
            return self.qubits
        return self.qubits[:-nc]

    def insular_qubits(self) -> tuple[int, ...]:
        """Qubits of this gate that are insular (Definition 2 of the paper).

        * For a single-qubit gate the qubit is insular iff the gate matrix is
          diagonal or anti-diagonal.
        * For a controlled-U gate all control qubits are insular.  If the
          controlled operation itself is diagonal/anti-diagonal on a target
          (e.g. ``cz``, ``cp``, ``rzz``), that target is insular too.

        The result is cached on the instance (gates are immutable).
        """
        cached = self.__dict__.get("_insular_cache")
        if cached is not None:
            return cached
        insular: list[int] = list(self.control_qubits)
        if self.spec.num_controls == 0 and self.num_qubits == 1:
            m = self.matrix()
            if is_diagonal(m) or is_antidiagonal(m):
                insular.append(self.qubits[0])
        elif self.spec.num_controls > 0:
            # Targets of a controlled gate are insular only when the whole
            # gate matrix is diagonal (cz, cp, crz, ccz, ...): then every
            # output amplitude depends on exactly one input amplitude along
            # every qubit, which is the footnote-2 case of Definition 2.
            if self.is_diagonal():
                insular.extend(self.target_qubits)
        elif self.num_qubits == 2 and self.name in ("rzz",):
            insular.extend(self.qubits)
        result = tuple(dict.fromkeys(insular))
        self.__dict__["_insular_cache"] = result
        return result

    def non_insular_qubits(self) -> tuple[int, ...]:
        """Qubits that are *not* insular — the ones the stager must keep local."""
        ins = set(self.insular_qubits())
        return tuple(q for q in self.qubits if q not in ins)

    def is_diagonal(self) -> bool:
        """True if the full gate matrix is diagonal."""
        return _cached_structure(self.name, self.params)[0]

    def is_antidiagonal(self) -> bool:
        """True if the full gate matrix is anti-diagonal."""
        return _cached_structure(self.name, self.params)[1]

    # -- misc ----------------------------------------------------------------

    def remap(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy of this gate with qubits renamed through *mapping*."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            pstr = "(" + ", ".join(f"{p:.6g}" for p in self.params) + ")"
        else:
            pstr = ""
        return f"{self.name}{pstr} {list(self.qubits)}"


def make_gate(name: str, qubits: Iterable[int], params: Iterable[float] = ()) -> Gate:
    """Convenience constructor for :class:`Gate`."""
    return Gate(name, tuple(int(q) for q in qubits), tuple(float(p) for p in params))

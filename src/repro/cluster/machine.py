"""Architectural model of the multi-node GPU cluster.

The paper assumes a machine with ``2^G`` nodes, each hosting ``2^R`` GPUs
(or DRAM capacity of ``2^(L+R)`` amplitudes), where each GPU holds ``2^L``
amplitudes locally (Section II, "Architectural Model").  A
:class:`MachineConfig` captures exactly those parameters plus the hardware
constants (bandwidths, kernel launch overhead, per-gate throughput) needed
by the performance model in :mod:`repro.cluster.comm` and
:mod:`repro.cluster.costmodel`.

The default constants are calibrated to the same order of magnitude as the
paper's Perlmutter testbed (A100-40GB GPUs, NVLink intra-node, Slingshot
200 Gb/s inter-node) so that the modelled simulation times land in the same
few-second range that Figure 5 reports.  Absolute agreement is not the
goal — the reproduction targets relative behaviour (speedups, scaling
shape, crossovers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MachineConfig", "PERLMUTTER_LIKE"]

#: Bytes per amplitude (complex128).
AMPLITUDE_BYTES = 16


@dataclass(frozen=True)
class MachineConfig:
    """Distributed execution model parameters.

    Attributes
    ----------
    local_qubits:
        ``L`` — each GPU shard holds ``2^L`` amplitudes.
    regional_qubits:
        ``R`` — each node holds ``2^(L+R)`` amplitudes (in GPU memory when
        ``2^R`` equals the GPUs per node, or in DRAM when offloading).
    global_qubits:
        ``G`` — there are ``2^G`` nodes.
    gpus_per_node:
        Physical GPUs in one node (4 on Perlmutter).
    gpu_memory_bytes:
        Device memory per GPU, used to decide when DRAM offloading is
        required.
    dram_bytes_per_node:
        Host DRAM per node available for offloaded shards.
    intra_node_bandwidth:
        Per-GPU NVLink-class bandwidth in bytes/second for intra-node
        all-to-all traffic.
    inter_node_bandwidth:
        Per-node network bandwidth in bytes/second for inter-node
        all-to-all traffic.
    pcie_bandwidth:
        Host-to-device bandwidth used by the DRAM-offload executor.
    kernel_launch_overhead:
        Seconds of fixed overhead per launched GPU kernel.
    comm_latency:
        Fixed latency per all-to-all communication phase (seconds).
    gpu_flops:
        Effective sustained complex-FLOP/s of one GPU for fused-matrix
        kernels.
    gpu_memory_bandwidth:
        Device memory bandwidth in bytes/second (bounds shared-memory
        kernels, which are memory-bound).
    inter_node_cost_factor:
        The ``c`` factor of Equation (2); the paper uses 3.
    """

    local_qubits: int = 28
    regional_qubits: int = 2
    global_qubits: int = 0
    gpus_per_node: int = 4
    gpu_memory_bytes: int = 40 * 2**30
    dram_bytes_per_node: int = 256 * 2**30
    intra_node_bandwidth: float = 200e9
    inter_node_bandwidth: float = 25e9
    pcie_bandwidth: float = 25e9
    kernel_launch_overhead: float = 8e-6
    comm_latency: float = 30e-6
    gpu_flops: float = 8e12
    gpu_memory_bandwidth: float = 1.3e12
    inter_node_cost_factor: float = 3.0

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """``2^G`` nodes."""
        return 1 << self.global_qubits

    @property
    def num_gpus(self) -> int:
        """Total number of *shard slots*: ``2^(R+G)``.

        Historically named ``num_gpus``, but after :meth:`for_circuit` folds
        overflow qubits into ``regional_qubits`` the extra slots are DRAM
        shards swapped through the GPUs, not physical devices.  Use
        :attr:`physical_gpus` for the number of real GPUs and
        :attr:`num_shards` for the (identical) shard count under its honest
        name.
        """
        return 1 << (self.regional_qubits + self.global_qubits)

    @property
    def num_shards(self) -> int:
        """Number of ``2^L`` shards the state is split into: ``2^(R+G)``."""
        return 1 << (self.regional_qubits + self.global_qubits)

    @property
    def physical_gpus(self) -> int:
        """Physical GPUs in the machine: ``num_nodes * gpus_per_node``.

        This is the data-parallel width of the cluster.  When
        ``num_shards > physical_gpus`` the excess shards live in node DRAM
        and are streamed through the GPUs (Section VII-C).
        """
        return self.num_nodes * self.gpus_per_node

    @property
    def shard_amplitudes(self) -> int:
        """Amplitudes per shard (``2^L``)."""
        return 1 << self.local_qubits

    @property
    def shard_bytes(self) -> int:
        return self.shard_amplitudes * AMPLITUDE_BYTES

    @property
    def non_local_qubits(self) -> int:
        return self.regional_qubits + self.global_qubits

    def total_qubits(self) -> int:
        """Largest circuit (in qubits) whose state fits this machine."""
        return self.local_qubits + self.regional_qubits + self.global_qubits

    def state_bytes(self, num_qubits: int) -> int:
        return (1 << num_qubits) * AMPLITUDE_BYTES

    def fits_in_gpus(self, num_qubits: int) -> bool:
        """True when the full state fits in aggregate GPU device memory."""
        return self.state_bytes(num_qubits) <= self.physical_gpus * self.gpu_memory_bytes

    def requires_offload(self, num_qubits: int) -> bool:
        """True when simulating *num_qubits* needs DRAM offloading."""
        return not self.fits_in_gpus(num_qubits)

    def validate(self, num_qubits: int) -> None:
        """Raise if the qubit partition does not cover the circuit."""
        if self.total_qubits() != num_qubits:
            raise ValueError(
                f"machine L+R+G={self.total_qubits()} does not match circuit "
                f"with {num_qubits} qubits"
            )
        if self.state_bytes(num_qubits) > self.num_nodes * self.dram_bytes_per_node:
            raise ValueError(
                f"state of {num_qubits} qubits does not fit the cluster DRAM"
            )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def for_circuit(
        cls,
        num_qubits: int,
        num_gpus: int | None = None,
        gpus_per_node: int = 4,
        local_qubits: int | None = None,
        num_shards: int | None = None,
        **overrides,
    ) -> "MachineConfig":
        """Build a machine for *num_qubits* split into *num_shards* shards.

        Mirrors the paper's weak-scaling setup: the number of non-local
        qubits is ``log2(num_shards)``; up to ``log2(gpus_per_node)`` of
        them are regional, the rest global.  If the circuit has more qubits
        than ``L + log2(num_shards)`` the extra qubits become regional (DRAM
        offloading territory: shards beyond :attr:`physical_gpus` stream
        through the devices).

        ``num_shards`` is the honest name for what the deprecated
        ``num_gpus`` parameter always meant — *shard slots*, not physical
        devices (see :attr:`num_gpus`).  ``num_gpus`` is kept as an alias;
        passing both is an error.
        """
        if num_shards is not None and num_gpus is not None:
            raise ValueError("pass num_shards or the deprecated num_gpus alias, not both")
        if num_shards is None:
            num_shards = 1 if num_gpus is None else num_gpus
        num_gpus = num_shards
        if num_gpus < 1 or (num_gpus & (num_gpus - 1)) != 0:
            raise ValueError("num_shards must be a positive power of two")
        non_local = num_gpus.bit_length() - 1
        if local_qubits is None:
            local_qubits = num_qubits - non_local
        # A machine with fewer GPUs than a full node only exposes that many.
        gpus_per_node = min(gpus_per_node, num_gpus)
        max_regional = max(0, gpus_per_node.bit_length() - 1)
        regional = min(non_local, max_regional)
        global_q = non_local - regional
        # Any remaining qubits (beyond GPU shard capacity) become regional:
        # their shards live in node DRAM and are swapped through the GPUs.
        extra = num_qubits - (local_qubits + regional + global_q)
        if extra < 0:
            raise ValueError(
                f"local_qubits={local_qubits} too large for {num_qubits} qubits "
                f"on {num_gpus} GPUs"
            )
        regional += extra
        return cls(
            local_qubits=local_qubits,
            regional_qubits=regional,
            global_qubits=global_q,
            gpus_per_node=gpus_per_node,
            **overrides,
        )


#: The default Perlmutter-like configuration used throughout the benchmarks.
PERLMUTTER_LIKE = MachineConfig()

"""Distributed GPU cluster performance model (machine, communication, kernel cost)."""

from .comm import CommModel, TransitionTraffic, transition_time, transition_traffic
from .costmodel import DEFAULT_COST_MODEL, CostModel, KernelCost
from .machine import AMPLITUDE_BYTES, PERLMUTTER_LIKE, MachineConfig

__all__ = [
    "MachineConfig",
    "PERLMUTTER_LIKE",
    "AMPLITUDE_BYTES",
    "CostModel",
    "KernelCost",
    "DEFAULT_COST_MODEL",
    "CommModel",
    "TransitionTraffic",
    "transition_traffic",
    "transition_time",
]

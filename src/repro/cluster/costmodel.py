"""Kernel cost model (Section VI-B of the paper).

The KERNELIZE dynamic program needs a cost function ``COST(K)`` mapping a
kernel to (modelled) execution time.  The paper uses two kernel execution
strategies, each with its own cost:

* **Fusion kernels** — all gates are fused into one ``2^k × 2^k`` matrix and
  applied with cuQuantum.  The cost depends only on the number of qubits
  ``k`` of the kernel and is measured offline per ``k``.
* **Shared-memory kernels** — the state is streamed through GPU shared
  memory in micro-batches and the gates are applied one by one.  The cost
  is ``α + Σ_g cost(g)`` where ``α`` is the fixed micro-batch load time.

The constants below play the role of the offline GPU benchmarking the
paper performs in Section VII-A; they are expressed in abstract *cost
units* (the same relative units as Figures 10 and 13–25) with a separate
calibration (:class:`CostModel.seconds_per_unit`) that converts units to
modelled seconds for the end-to-end performance model.

The most cost-efficient fusion kernel size under the default table is 5
qubits — the property the greedy baseline of Section VII-E exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..circuits.gates import Gate

__all__ = ["CostModel", "KernelCost", "DEFAULT_COST_MODEL"]


#: Default fusion-kernel cost per kernel size (qubits -> cost units).
#: Shaped like the measured cuQuantum apply-matrix times: flat for tiny
#: matrices (launch-bound), then roughly doubling per added qubit once the
#: matrix work dominates.  Cost is per full pass over a 2^L shard.
_DEFAULT_FUSION_COST: dict[int, float] = {
    0: 0.5,
    1: 1.0,
    2: 1.0,
    3: 1.05,
    4: 1.1,
    5: 1.2,
    6: 2.0,
    7: 3.8,
    8: 7.5,
    9: 15.0,
    10: 30.0,
}

#: Default per-gate cost inside a shared-memory kernel (gate name -> units).
_DEFAULT_SHM_GATE_COST: dict[str, float] = {
    "default": 0.08,
    "diagonal": 0.03,
    "control": 0.05,
}

#: Fixed cost of loading a micro-batch of amplitudes into shared memory (α).
_DEFAULT_SHM_LOAD_COST = 0.9

#: Largest kernel (in qubits) that a fusion kernel may span.
_DEFAULT_MAX_FUSION_QUBITS = 7

#: Largest active-qubit count of a shared-memory kernel (HyQuas uses 10/11;
#: we keep it modest because the functional executor materialises the
#: fused matrix when validating plans).
_DEFAULT_MAX_SHM_QUBITS = 10


@dataclass(frozen=True)
class KernelCost:
    """Cost of one kernel, in cost units, plus its execution strategy."""

    cost: float
    kernel_type: str  # "fusion" | "shm"


@dataclass(frozen=True)
class CostModel:
    """Cost function for kernels (fusion and shared-memory strategies).

    Attributes
    ----------
    fusion_cost_per_qubits:
        Map from kernel qubit count to fusion-kernel cost units.
    shm_load_cost:
        The ``α`` constant: cost of streaming a micro-batch through shared
        memory, charged once per shared-memory kernel.
    shm_gate_cost:
        Per-gate cost inside a shared-memory kernel, keyed by ``"diagonal"``,
        ``"control"`` or ``"default"``.
    max_fusion_qubits:
        Kernels wider than this cannot use the fusion strategy.
    max_shm_qubits:
        Kernels wider than this cannot use the shared-memory strategy.
    seconds_per_unit:
        Conversion from cost units to modelled seconds for one pass over a
        ``2^L``-amplitude shard with the default ``L=28``.
    """

    fusion_cost_per_qubits: Mapping[int, float] = field(
        default_factory=lambda: dict(_DEFAULT_FUSION_COST)
    )
    shm_load_cost: float = _DEFAULT_SHM_LOAD_COST
    shm_gate_cost: Mapping[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_SHM_GATE_COST)
    )
    max_fusion_qubits: int = _DEFAULT_MAX_FUSION_QUBITS
    max_shm_qubits: int = _DEFAULT_MAX_SHM_QUBITS
    seconds_per_unit: float = 6e-3

    # ------------------------------------------------------------------
    # Per-strategy costs
    # ------------------------------------------------------------------

    def fusion_cost(self, num_qubits: int) -> float:
        """Cost units of a fusion kernel over *num_qubits* qubits."""
        if num_qubits > self.max_fusion_qubits:
            return float("inf")
        table = self.fusion_cost_per_qubits
        if num_qubits in table:
            return float(table[num_qubits])
        largest = max(table)
        # Extrapolate: cost doubles per extra qubit beyond the table.
        return float(table[largest]) * (2.0 ** (num_qubits - largest))

    def gate_cost(self, gate: Gate) -> float:
        """Per-gate cost inside a shared-memory kernel."""
        if gate.is_diagonal():
            return float(self.shm_gate_cost.get("diagonal", 0.03))
        if gate.spec.num_controls > 0:
            return float(self.shm_gate_cost.get("control", 0.05))
        return float(self.shm_gate_cost.get("default", 0.08))

    def shm_cost(self, gates: Sequence[Gate], num_qubits: int) -> float:
        """Cost units of a shared-memory kernel containing *gates*."""
        if num_qubits > self.max_shm_qubits:
            return float("inf")
        return self.shm_load_cost + sum(self.gate_cost(g) for g in gates)

    # ------------------------------------------------------------------
    # Kernel-level API used by the kernelizers
    # ------------------------------------------------------------------

    def kernel_cost(self, gates: Sequence[Gate], qubits: Iterable[int] | None = None) -> KernelCost:
        """Best cost over the two strategies for a kernel made of *gates*."""
        if qubits is None:
            qubit_set: set[int] = set()
            for g in gates:
                qubit_set.update(g.qubits)
            width = len(qubit_set)
        else:
            width = len(set(qubits))
        fusion = self.fusion_cost(width)
        shm = self.shm_cost(gates, width)
        if fusion <= shm:
            return KernelCost(fusion, "fusion")
        return KernelCost(shm, "shm")

    def cost(self, gates: Sequence[Gate], qubits: Iterable[int] | None = None) -> float:
        """Shorthand for ``kernel_cost(...).cost``."""
        return self.kernel_cost(gates, qubits).cost

    def best_fusion_width(self) -> int:
        """The most cost-efficient fusion kernel size (cost per qubit covered).

        This is the width the greedy packing baseline of Section VII-E
        targets (5 qubits under the default table).
        """
        best_width, best_density = 1, float("inf")
        for width in range(1, self.max_fusion_qubits + 1):
            density = self.fusion_cost(width) / width
            if density < best_density - 1e-12:
                best_density = density
                best_width = width
        return best_width

    # ------------------------------------------------------------------
    # Conversion to modelled wall-clock time
    # ------------------------------------------------------------------

    def units_to_seconds(self, units: float, local_qubits: int, reference_local_qubits: int = 28) -> float:
        """Convert cost units into modelled seconds for a ``2^L`` shard.

        Cost units are defined for the reference shard size (``L=28``); a
        shard with fewer amplitudes takes proportionally less time because
        the kernels stream proportionally fewer amplitudes.
        """
        scale = 2.0 ** (local_qubits - reference_local_qubits)
        return units * self.seconds_per_unit * scale


#: Default cost model used by the benchmarks.
DEFAULT_COST_MODEL = CostModel()

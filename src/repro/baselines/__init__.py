"""Baseline simulator models (HyQuas, cuQuantum, Qiskit Aer, QDAO) plus Atlas itself."""

from .atlas import AtlasSimulator
from .base import BaselineSimulator
from .cuquantum import CuQuantumSimulator
from .hyquas import HyQuasSimulator
from .qdao import QdaoSimulator
from .qiskit_aer import QiskitAerSimulator

__all__ = [
    "BaselineSimulator",
    "AtlasSimulator",
    "HyQuasSimulator",
    "CuQuantumSimulator",
    "QiskitAerSimulator",
    "QdaoSimulator",
    "SIMULATORS",
    "make_simulator",
]

#: Registry of the end-to-end simulators compared in Figure 5.
SIMULATORS = {
    "atlas": AtlasSimulator,
    "hyquas": HyQuasSimulator,
    "cuquantum": CuQuantumSimulator,
    "qiskit": QiskitAerSimulator,
}


def make_simulator(name: str, **kwargs):
    """Instantiate a simulator model by name (``atlas``/``hyquas``/``cuquantum``/``qiskit``)."""
    try:
        cls = SIMULATORS[name]
    except KeyError as exc:
        raise ValueError(f"unknown simulator {name!r}; known: {sorted(SIMULATORS)}") from exc
    return cls(**kwargs)

"""Common scaffolding for the baseline simulator models.

The paper compares Atlas against HyQuas, cuQuantum (cusvaer), Qiskit Aer
and QDAO.  Those systems are CUDA-only or closed, so this reproduction
re-implements each system's *partitioning strategy* (how it groups gates
and when it reshuffles the distributed state) on top of the same circuit
IR, cluster performance model and NumPy execution substrate used by Atlas.
That isolates precisely what the paper's end-to-end figures measure: the
effect of partitioning quality on communication and kernel efficiency.

Every baseline implements :class:`BaselineSimulator`:

* ``partition(circuit, machine)`` produces an :class:`ExecutionPlan` using
  the baseline's own staging/fusion heuristics, and
* ``model_time(circuit, machine)`` prices that plan with the shared timing
  model, scaled by the baseline's overhead factors (kernel inefficiency and
  communication inefficiency relative to a hand-tuned CUDA runtime).

Because the plans are real :class:`ExecutionPlan` objects, they can also be
executed functionally with :func:`repro.runtime.execute_plan`, which tests
use to confirm that every baseline still computes the correct state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.circuit import Circuit
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import MachineConfig
from ..core.plan import ExecutionPlan
from ..runtime.timeline import TimingBreakdown, model_simulation_time

__all__ = ["BaselineSimulator"]


@dataclass
class BaselineSimulator:
    """Base class: a named partitioning strategy plus overhead factors."""

    name: str = "baseline"
    #: Multiplier on modelled kernel time (relative kernel inefficiency).
    kernel_overhead_factor: float = 1.0
    #: Multiplier on modelled communication time.
    comm_overhead_factor: float = 1.0
    cost_model: CostModel = DEFAULT_COST_MODEL

    # -- strategy hooks --------------------------------------------------

    def partition(self, circuit: Circuit, machine: MachineConfig) -> ExecutionPlan:
        """Produce this simulator's execution plan for *circuit* on *machine*."""
        raise NotImplementedError

    # -- shared timing ----------------------------------------------------

    def model_time(self, circuit: Circuit, machine: MachineConfig) -> TimingBreakdown:
        """Model the end-to-end simulation time of this baseline."""
        plan = self.partition(circuit, machine)
        return model_simulation_time(
            plan,
            machine,
            cost_model=self.cost_model,
            kernel_overhead_factor=self.kernel_overhead_factor,
            comm_overhead_factor=self.comm_overhead_factor,
        )

"""HyQuas-style baseline simulator model.

HyQuas (Zhang et al., ICS'21) groups gates with a hybrid partitioner
(OShareMem / transposition-based groups) chosen greedily, and reshuffles
the distributed state with a heuristic qubit selection.  The paper's
Figure 5 shows it is the strongest GPU baseline at small GPU counts but
scales worse than Atlas because its greedy staging needs more inter-node
exchanges.

The model here re-creates that behaviour structurally:

* staging uses the greedy (SnuQS-like) heuristic rather than the ILP, which
  yields more stages — and therefore more all-to-all exchanges — on
  circuits where the greedy qubit scores are misleading;
* within a stage, gates are grouped with the contiguous-segment DP
  (ORDERED-KERNELIZE), which is close to HyQuas's OShareMem grouping
  quality but cannot reorder across the sequence like Atlas's KERNELIZE;
* small kernel/communication overhead factors reflect HyQuas's hand-tuned
  CUDA kernels (slightly faster per kernel than the generic model, slightly
  slower exchanges than NCCL-tuned Atlas).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.circuit import Circuit
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import MachineConfig
from ..core.ordered_kernelize import ordered_kernelize
from ..core.plan import ExecutionPlan
from ..core.stage_heuristics import snuqs_stage_circuit
from .base import BaselineSimulator

__all__ = ["HyQuasSimulator"]


@dataclass
class HyQuasSimulator(BaselineSimulator):
    """HyQuas-like: greedy staging + contiguous gate grouping."""

    name: str = "hyquas"
    kernel_overhead_factor: float = 1.0
    comm_overhead_factor: float = 1.15
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)

    def partition(self, circuit: Circuit, machine: MachineConfig) -> ExecutionPlan:
        machine.validate(circuit.num_qubits)
        staging = snuqs_stage_circuit(
            circuit,
            machine.local_qubits,
            machine.regional_qubits,
            machine.global_qubits,
            inter_node_cost_factor=machine.inter_node_cost_factor,
        )
        for stage in staging.stages:
            stage.kernels = ordered_kernelize(stage.gates, self.cost_model)
        return ExecutionPlan(
            num_qubits=circuit.num_qubits,
            stages=staging.stages,
            circuit_name=f"{circuit.name}[hyquas]",
        )

"""Atlas itself, wrapped in the same interface as the baseline models.

Having Atlas available as a :class:`BaselineSimulator` keeps the benchmark
drivers uniform: every curve of Figure 5 (Atlas, HyQuas, cuQuantum, Qiskit)
is produced by the same loop over ``SIMULATORS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.circuit import Circuit
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import MachineConfig
from ..core.kernelize import KernelizeConfig
from ..core.partitioner import partition
from ..core.plan import ExecutionPlan
from .base import BaselineSimulator

__all__ = ["AtlasSimulator"]


@dataclass
class AtlasSimulator(BaselineSimulator):
    """Atlas: ILP staging + DP kernelization (the paper's system)."""

    name: str = "atlas"
    kernel_overhead_factor: float = 1.0
    comm_overhead_factor: float = 1.0
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    #: Beam width of the kernelizer; benchmarks lower it for very large circuits.
    pruning_threshold: int = 100
    ilp_time_limit: float | None = 120.0

    def partition(self, circuit: Circuit, machine: MachineConfig) -> ExecutionPlan:
        plan, _report = partition(
            circuit,
            machine,
            cost_model=self.cost_model,
            stager="ilp",
            kernelizer="atlas",
            kernelize_config=KernelizeConfig(pruning_threshold=self.pruning_threshold),
            ilp_time_limit=self.ilp_time_limit,
        )
        return plan

"""cuQuantum (cusvaer) style baseline simulator model.

The cuQuantum Appliance distributes the state across GPUs and relies on
cuStateVec's generic gate application plus index-bit swaps whenever a gate
touches qubits held on other devices.  There is no global staging
optimisation: qubit placement is fixed (the highest-order qubits are the
distributed ones) and a batch of index-bit swaps is emitted every time a
gate needs a non-local qubit.  Gate fusion is limited to small windows.

The model therefore:

* uses the *first-fit* greedy staging (fixed-layout flavour): a new stage —
  i.e. a new round of index-bit swaps — starts whenever the working set of
  non-insular qubits no longer fits in the local set;
* fuses gates only within contiguous windows of at most four qubits
  (cuStateVec's practical fusion width);
* carries a modest per-kernel overhead reflecting the generic (non
  circuit-specialised) kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.circuit import Circuit
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import MachineConfig
from ..core.greedy_kernelize import greedy_kernelize
from ..core.plan import ExecutionPlan
from ..core.stage_heuristics import greedy_stage_circuit
from .base import BaselineSimulator

__all__ = ["CuQuantumSimulator"]


@dataclass
class CuQuantumSimulator(BaselineSimulator):
    """cuQuantum/cusvaer-like: fixed layout, index-bit swaps, small fusion windows."""

    name: str = "cuquantum"
    kernel_overhead_factor: float = 1.25
    comm_overhead_factor: float = 1.0
    fusion_width: int = 4
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)

    def partition(self, circuit: Circuit, machine: MachineConfig) -> ExecutionPlan:
        machine.validate(circuit.num_qubits)
        staging = greedy_stage_circuit(
            circuit,
            machine.local_qubits,
            machine.regional_qubits,
            machine.global_qubits,
            inter_node_cost_factor=machine.inter_node_cost_factor,
        )
        for stage in staging.stages:
            stage.kernels = greedy_kernelize(
                stage.gates, self.cost_model, max_width=self.fusion_width
            )
        return ExecutionPlan(
            num_qubits=circuit.num_qubits,
            stages=staging.stages,
            circuit_name=f"{circuit.name}[cuquantum]",
        )

"""Qiskit Aer (GPU backend) style baseline simulator model.

Aer's GPU state-vector backend applies gates through its generic chunk-
based (cache-blocking) machinery with a simple sequential gate-fusion pass
(default fusion width 5, contiguous gates only), and exchanges chunks
between devices whenever a gate spans chunk boundaries.  In the paper's
Figure 5 it is one to two orders of magnitude slower than the specialised
GPU simulators, dominated by per-gate launch overheads and chunk traffic.

The model mirrors that structure: first-fit staging over a fixed layout,
contiguous fusion of width ≤ 3 (Aer's effective width after its conservative
cost heuristics on these circuits), and a large per-kernel overhead factor
representing the generic chunk machinery and Python-driven scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.circuit import Circuit
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import MachineConfig
from ..core.greedy_kernelize import greedy_kernelize
from ..core.plan import ExecutionPlan
from ..core.stage_heuristics import greedy_stage_circuit
from .base import BaselineSimulator

__all__ = ["QiskitAerSimulator"]


@dataclass
class QiskitAerSimulator(BaselineSimulator):
    """Qiskit-Aer-like: chunked execution, conservative fusion, high overheads."""

    name: str = "qiskit"
    kernel_overhead_factor: float = 30.0
    comm_overhead_factor: float = 2.5
    fusion_width: int = 3
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)

    def partition(self, circuit: Circuit, machine: MachineConfig) -> ExecutionPlan:
        machine.validate(circuit.num_qubits)
        staging = greedy_stage_circuit(
            circuit,
            machine.local_qubits,
            machine.regional_qubits,
            machine.global_qubits,
            inter_node_cost_factor=machine.inter_node_cost_factor,
        )
        for stage in staging.stages:
            stage.kernels = greedy_kernelize(
                stage.gates, self.cost_model, max_width=self.fusion_width
            )
        return ExecutionPlan(
            num_qubits=circuit.num_qubits,
            stages=staging.stages,
            circuit_name=f"{circuit.name}[qiskit]",
        )

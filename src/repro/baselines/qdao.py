"""QDAO-style DRAM-offloading baseline (the comparison of Figures 7 and 8).

QDAO (Zhao et al., ICCAD'23) simulates circuits larger than GPU memory by
keeping the state in host DRAM and streaming *sub-state blocks* through the
GPU.  Its scheduler groups gates so that each group touches only ``t``
qubits (``t = 19`` is the paper's best setting with ``m = 28`` on-GPU
qubits); for every group, **all** blocks of the state are loaded to the GPU,
updated, and written back.  Because grouping is done on only ``t`` qubits,
circuits need many groups, and every group pays a full sweep of the state
over PCIe — which is why Atlas (one sweep per *stage*, with far fewer
stages) is one to two orders of magnitude faster in Figure 7, and why QDAO
does not speed up with more GPUs in Figure 8 (the PCIe sweeps are the
bottleneck and are not parallelised across devices).

The model reproduces exactly that structure: the number of gate groups is
computed with the first-fit grouping over ``t``-qubit working sets (the
same mechanism QDAO's compact scheduler uses), and the modelled time is
``groups × (full-state PCIe sweep + per-group GPU compute)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.circuit import Circuit
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import AMPLITUDE_BYTES, MachineConfig
from ..core.greedy_kernelize import greedy_kernelize
from ..runtime.timeline import TimingBreakdown

__all__ = ["QdaoSimulator"]


@dataclass
class QdaoSimulator:
    """QDAO-like block-streaming DRAM-offload simulator model."""

    name: str = "qdao"
    #: On-GPU qubits (the paper's ``m``); blocks hold ``2^m`` amplitudes.
    on_gpu_qubits: int = 28
    #: Scheduling granularity (the paper's ``t``); gate groups touch ≤ t qubits.
    group_qubits: int = 19
    kernel_overhead_factor: float = 1.3
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)

    def num_groups(self, circuit: Circuit) -> int:
        """Number of gate groups QDAO's compact scheduler produces.

        First-fit grouping over working sets of at most ``t`` qubits.
        Unlike Atlas's stager, QDAO has no notion of insular qubits, so
        *every* qubit a gate touches counts towards the working set — which
        is why it needs many more groups (and therefore many more full-state
        PCIe sweeps) on the same circuits.
        """
        n = circuit.num_qubits
        t = min(self.group_qubits, n)
        groups = 0
        working: set[int] = set()
        for gate in circuit:
            qubits = set(gate.qubits)
            if working and len(working | qubits) > t:
                groups += 1
                working = set()
            working |= qubits
        if working:
            groups += 1
        return max(1, groups)

    def model_time(self, circuit: Circuit, machine: MachineConfig) -> TimingBreakdown:
        """Model QDAO's simulation time for *circuit* on *machine*.

        Only a single GPU's PCIe link is used no matter how many GPUs the
        machine has (QDAO's sweeps are sequential per group), reproducing
        the flat scaling of Figure 8.
        """
        n = circuit.num_qubits
        state_bytes = (1 << n) * AMPLITUDE_BYTES
        m = min(self.on_gpu_qubits, n)
        groups = self.num_groups(circuit)

        fits_on_gpu = state_bytes <= machine.gpu_memory_bytes
        if fits_on_gpu:
            sweeps = 1  # no offloading needed; a single load suffices
        else:
            sweeps = groups
        # Each sweep streams the full state in and out over one PCIe link.
        offload_seconds = sweeps * 2.0 * state_bytes / machine.pcie_bandwidth

        # GPU compute: greedy small-window fusion over the whole circuit,
        # scaled to the number of amplitudes actually resident per block.
        kernels = greedy_kernelize(circuit, self.cost_model, max_width=4)
        compute_units = kernels.total_cost * self.kernel_overhead_factor
        num_blocks = max(1, 1 << (n - m))
        compute_seconds = (
            self.cost_model.units_to_seconds(compute_units, m) * num_blocks
        )

        total = compute_seconds + offload_seconds
        return TimingBreakdown(
            total_seconds=total,
            computation_seconds=compute_seconds,
            communication_seconds=0.0,
            offload_seconds=offload_seconds,
            per_stage_compute=[compute_seconds / max(1, groups)] * groups,
            per_transition_comm=[],
            num_stages=groups,
            num_kernels=len(kernels),
            shard_passes_per_stage=sweeps,
        )

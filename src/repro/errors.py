"""Typed error taxonomy and recovery primitives for the execution layer.

Every failure the runtime can surface derives from :class:`ReproError` and
is classified on exactly one of two branches:

* :class:`TransientError` — the operation may succeed if repeated (shard
  I/O hiccups, a worker that failed to start, a corrupted cache entry that
  can be rebuilt).  The supervised runtimes retry these with bounded
  exponential backoff (:class:`RetryPolicy`) and escalate only when the
  budget is exhausted.
* :class:`PermanentError` — retrying cannot help (a kernel that computes
  garbage, an invalid plan, an over-budget allocation, a missed deadline, a
  closed session).  These propagate promptly; the recovery story, where one
  exists, is *degradation* (a different backend, the interpreter instead of
  the compiled program, a simpler planner), never a blind retry.

Each concrete class also inherits the builtin exception it historically
replaced (``ValueError``/``RuntimeError``/…), so code written against the
bare raises — ``except ValueError`` around plan validation, ``except
RuntimeError`` around a closed session — keeps working unchanged.

The module also provides the two recovery primitives shared by every
runtime: :class:`RetryPolicy` (deterministic bounded exponential backoff)
and :class:`Deadline` (an absolute wall-clock budget checked cooperatively
at stage/segment boundaries).

See ``docs/robustness.md`` for the full taxonomy, the retry/backoff policy
and the degradation chains.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = [
    "AdmissionError",
    "CacheCorruptionError",
    "Deadline",
    "DeadlineExceeded",
    "IntegrityError",
    "JobCancelledError",
    "KernelError",
    "PermanentError",
    "PlanValidationError",
    "QueueFullError",
    "ReproError",
    "RetryPolicy",
    "ServiceClosedError",
    "SessionClosedError",
    "ShardIOError",
    "SpecParseError",
    "StateValidationError",
    "StaticCheckError",
    "TenantQuotaError",
    "TransientError",
]


class ReproError(Exception):
    """Root of the typed error taxonomy.

    ``site`` names the injection/failure site when known (one of
    :data:`repro.runtime.faults.SITES` for injected faults); ``context``
    carries free-form diagnostic detail (worker index, shard index, ...).
    """

    def __init__(self, message: str = "", *, site: str | None = None, **context):
        super().__init__(message)
        self.site = site
        self.context = context

    @property
    def transient(self) -> bool:
        """Whether a retry of the same operation may succeed."""
        return isinstance(self, TransientError)


class TransientError(ReproError):
    """A failure that may not recur: retry with bounded backoff."""


class PermanentError(ReproError):
    """A failure retrying cannot fix: propagate (or degrade) promptly."""


class ShardIOError(TransientError, OSError):
    """A shard load/store failed in transit (the PCIe/DRAM path)."""


class KernelError(PermanentError, RuntimeError):
    """A kernel application failed or produced an invalid result.

    Deterministic kernels fail the same way on every retry, so this is
    permanent; the compiled-program path degrades to the interpreter
    (``compiled=False``) instead.
    """


class PlanValidationError(PermanentError, ValueError):
    """A plan (or a plan/machine/circuit combination) failed validation."""


class StateValidationError(PermanentError, ValueError):
    """An initial state failed validation (non-finite or badly
    non-normalized amplitudes; see ``Session.run(normalize=...)``)."""


class StaticCheckError(PermanentError, ValueError):
    """The static verifier (:mod:`repro.check`) rejected a plan, compiled
    program or shard schedule before execution.

    Retrying cannot help — the artifact itself violates an execution
    invariant.  ``report`` carries the full :class:`repro.check.CheckReport`
    whose violations name the rule, the op/stage/shard site and diagnostic
    context; ``site`` holds the first violation's site string.
    """

    def __init__(self, message: str = "", *, report=None, site=None, **context):
        super().__init__(message, site=site, **context)
        self.report = report


class AdmissionError(PermanentError, MemoryError):
    """The admission check rejected a job whose modelled memory footprint
    exceeds the backend's budget (degrade down the backend chain)."""


class QueueFullError(AdmissionError):
    """The service's pending-job queue is at capacity.

    On the permanent branch deliberately: the *submission* as issued cannot
    proceed and the runtimes must not blind-retry it.  The client may
    resubmit once the queue drains — ``context`` carries ``depth`` and
    ``limit`` so backpressure-aware clients can pace themselves.
    """


class TenantQuotaError(AdmissionError):
    """One tenant's pending-job quota is exhausted (other tenants may
    still submit — this is per-tenant backpressure, not global)."""


class SpecParseError(AdmissionError, ValueError):
    """A textual circuit spec (one ``submit_file``/``submit_many`` line)
    failed to parse.

    Per-job, not per-batch: the service rejects only the malformed line as
    a typed job failure and admits the rest of the batch.  Permanent — the
    same text parses the same way on every retry."""


class JobCancelledError(PermanentError, RuntimeError):
    """The job was cancelled before it produced a result; ``result()``
    re-raises this on every later call."""


class DeadlineExceeded(PermanentError, TimeoutError):
    """The job's cooperative deadline expired at a cancellation point."""


class CacheCorruptionError(TransientError, RuntimeError):
    """A cached plan entry failed its integrity check (evict and replan)."""


class IntegrityError(PermanentError, RuntimeError):
    """A runtime integrity monitor detected corruption: state norm drift
    beyond tolerance, a shard checksum mismatch between stages, or a
    tampered durable record (checkpoint/journal) that must never be
    trusted.

    Permanent by design — retrying on corrupted state would silently
    propagate garbage; the recovery story is discarding the corrupt
    artifact (evict the checkpoint, skip the journal record, rerun from a
    trusted point)."""


class SessionClosedError(PermanentError, RuntimeError):
    """The Session/runtime was used after :meth:`close`."""


class ServiceClosedError(SessionClosedError):
    """The :class:`repro.service.SimulationService` was used after
    :meth:`close` (inherits the closed-session semantics)."""


# ---------------------------------------------------------------------------
# Recovery primitives
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic bounded exponential backoff for transient failures.

    ``max_attempts`` counts the total tries (first attempt included);
    attempt ``k`` (1-based) sleeps ``min(base_delay * multiplier**(k-1),
    max_delay)`` before retrying.  No jitter: recovery schedules are
    reproducible, which the bit-exact fault-matrix tests rely on.
    """

    max_attempts: int = 3
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.05

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based)."""
        return min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)

    def sleep(self, attempt: int) -> None:
        delay = self.delay(attempt)
        if delay > 0:
            time.sleep(delay)


#: Default policy used by the runtimes when none is configured.
DEFAULT_RETRY_POLICY = RetryPolicy()


class Deadline:
    """An absolute wall-clock budget with cooperative cancellation checks.

    Built from a relative budget in seconds (``Deadline(2.5)``); runtimes
    call :meth:`check` at stage/segment/shard boundaries, which raises
    :class:`DeadlineExceeded` once the budget is spent.  A ``None`` budget
    never expires (:meth:`check` is then a no-op), so call sites do not
    need to special-case the unbounded path.
    """

    __slots__ = ("seconds", "_expires")

    def __init__(self, seconds: float | None):
        if seconds is not None and seconds < 0:
            raise ValueError("deadline must be non-negative")
        self.seconds = seconds
        self._expires = None if seconds is None else time.monotonic() + seconds

    def remaining(self) -> float:
        """Seconds left (``inf`` for an unbounded deadline)."""
        if self._expires is None:
            return float("inf")
        return self._expires - time.monotonic()

    def expired(self) -> bool:
        return self._expires is not None and time.monotonic() >= self._expires

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"deadline of {self.seconds:.6g}s exceeded"
                + (f" at {where}" if where else ""),
                site=where or None,
            )

    @classmethod
    def resolve(cls, deadline: "Deadline | float | None") -> "Deadline":
        """Coerce ``None`` / seconds / an existing deadline into a Deadline."""
        if isinstance(deadline, cls):
            return deadline
        return cls(deadline)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._expires is None:
            return "<Deadline unbounded>"
        return f"<Deadline {self.remaining():.3f}s remaining of {self.seconds:.3f}s>"

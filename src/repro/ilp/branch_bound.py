"""Pure-Python branch-and-bound ILP solver.

A fallback backend (and a cross-check for the HiGHS backend in tests):
solves the LP relaxation with :func:`scipy.optimize.linprog` and branches on
the most fractional integer variable, exploring the tree best-first with
node pruning against the incumbent.  Only intended for the modest model
sizes produced by the circuit-staging formulation of small circuits; the
HiGHS backend is the default everywhere else.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .model import ConstraintSense, IlpModel, Solution, SolveStatus, VarType

__all__ = ["solve_with_branch_and_bound"]

_INT_TOL = 1e-6


def _build_lp(model: IlpModel):
    """Lower the model to linprog form (A_ub, b_ub, A_eq, b_eq, c, bounds)."""
    n = model.num_variables
    c = np.zeros(n)
    for idx, coeff in model.objective.coeffs.items():
        c[idx] = coeff

    ub_rows, ub_cols, ub_data, b_ub = [], [], [], []
    eq_rows, eq_cols, eq_data, b_eq = [], [], [], []
    n_ub = n_eq = 0
    for con in model.constraints:
        rhs = -con.expr.constant
        if con.sense is ConstraintSense.EQ:
            for idx, coeff in con.expr.coeffs.items():
                eq_rows.append(n_eq)
                eq_cols.append(idx)
                eq_data.append(coeff)
            b_eq.append(rhs)
            n_eq += 1
        else:
            sign = 1.0 if con.sense is ConstraintSense.LE else -1.0
            for idx, coeff in con.expr.coeffs.items():
                ub_rows.append(n_ub)
                ub_cols.append(idx)
                ub_data.append(sign * coeff)
            b_ub.append(sign * rhs)
            n_ub += 1

    a_ub = sparse.csr_matrix((ub_data, (ub_rows, ub_cols)), shape=(n_ub, n)) if n_ub else None
    a_eq = sparse.csr_matrix((eq_data, (eq_rows, eq_cols)), shape=(n_eq, n)) if n_eq else None
    bounds = [(var.lower, var.upper) for var in model.variables]
    int_vars = [v.index for v in model.variables if v.var_type in (VarType.BINARY, VarType.INTEGER)]
    return c, a_ub, np.array(b_ub), a_eq, np.array(b_eq), bounds, int_vars


def _solve_relaxation(c, a_ub, b_ub, a_eq, b_eq, bounds):
    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub if a_ub is not None else None,
        A_eq=a_eq,
        b_eq=b_eq if a_eq is not None else None,
        bounds=bounds,
        method="highs",
    )
    return result


def solve_with_branch_and_bound(
    model: IlpModel,
    time_limit: float | None = 60.0,
    max_nodes: int = 100_000,
) -> Solution:
    """Solve *model* by LP-relaxation branch and bound.

    Parameters
    ----------
    model:
        The ILP to solve.
    time_limit:
        Wall-clock limit in seconds; the best incumbent found so far is
        returned with status ``TIME_LIMIT`` if it is hit.
    max_nodes:
        Hard cap on explored branch-and-bound nodes.
    """
    c, a_ub, b_ub, a_eq, b_eq, base_bounds, int_vars = _build_lp(model)
    start = time.monotonic()
    counter = itertools.count()

    root = _solve_relaxation(c, a_ub, b_ub, a_eq, b_eq, base_bounds)
    if root.status == 2:
        return Solution(status=SolveStatus.INFEASIBLE)
    if root.status == 3:
        return Solution(status=SolveStatus.UNBOUNDED)
    if root.status != 0:
        return Solution(status=SolveStatus.ERROR)

    best_obj = math.inf
    best_x: np.ndarray | None = None
    # Best-first frontier keyed by the relaxation bound.
    frontier: list[tuple[float, int, list[tuple[float, float]], np.ndarray]] = []
    heapq.heappush(frontier, (root.fun, next(counter), base_bounds, root.x))
    nodes = 0
    timed_out = False

    while frontier:
        bound, _, bounds, x = heapq.heappop(frontier)
        if bound >= best_obj - 1e-9:
            continue
        nodes += 1
        if nodes > max_nodes:
            timed_out = True
            break
        if time_limit is not None and time.monotonic() - start > time_limit:
            timed_out = True
            break

        # Find the most fractional integer variable.
        frac_idx = -1
        frac_amount = _INT_TOL
        for idx in int_vars:
            frac = abs(x[idx] - round(x[idx]))
            if frac > frac_amount:
                frac_amount = frac
                frac_idx = idx
        if frac_idx < 0:
            # Integral solution.
            if bound < best_obj:
                best_obj = bound
                best_x = x.copy()
            continue

        floor_val = math.floor(x[frac_idx])
        for lo, hi in ((bounds[frac_idx][0], floor_val), (floor_val + 1, bounds[frac_idx][1])):
            if lo > hi:
                continue
            child_bounds = list(bounds)
            child_bounds[frac_idx] = (lo, hi)
            res = _solve_relaxation(c, a_ub, b_ub, a_eq, b_eq, child_bounds)
            if res.status != 0:
                continue
            if res.fun < best_obj - 1e-9:
                heapq.heappush(frontier, (res.fun, next(counter), child_bounds, res.x))

    if best_x is None:
        if timed_out:
            return Solution(status=SolveStatus.TIME_LIMIT)
        return Solution(status=SolveStatus.INFEASIBLE)

    # Round integer variables and report.
    values = {i: float(v) for i, v in enumerate(best_x)}
    for idx in int_vars:
        values[idx] = float(round(values[idx]))
    status = SolveStatus.TIME_LIMIT if timed_out else SolveStatus.OPTIMAL
    objective = float(model.objective.evaluate(values))
    return Solution(status=status, objective=objective, values=values)

"""ILP backend based on :func:`scipy.optimize.milp` (HiGHS).

This mirrors the paper's use of the HiGHS solver through PuLP: the model is
lowered to the sparse matrix form HiGHS expects and solved as a
mixed-integer linear program.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from .model import ConstraintSense, IlpModel, Solution, SolveStatus, VarType

__all__ = ["solve_with_scipy"]


def _lower_model(model: IlpModel):
    """Lower an :class:`IlpModel` to (c, A, lb, ub, integrality, bounds)."""
    n = model.num_variables
    c = np.zeros(n)
    for idx, coeff in model.objective.coeffs.items():
        c[idx] = coeff

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    con_lb: list[float] = []
    con_ub: list[float] = []
    for row, con in enumerate(model.constraints):
        for idx, coeff in con.expr.coeffs.items():
            if coeff != 0.0:
                rows.append(row)
                cols.append(idx)
                data.append(coeff)
        rhs = -con.expr.constant
        if con.sense is ConstraintSense.LE:
            con_lb.append(-np.inf)
            con_ub.append(rhs)
        elif con.sense is ConstraintSense.GE:
            con_lb.append(rhs)
            con_ub.append(np.inf)
        else:
            con_lb.append(rhs)
            con_ub.append(rhs)

    num_cons = len(model.constraints)
    a_matrix = sparse.csr_matrix((data, (rows, cols)), shape=(num_cons, n))

    integrality = np.zeros(n)
    lower = np.zeros(n)
    upper = np.zeros(n)
    for var in model.variables:
        lower[var.index] = var.lower
        upper[var.index] = var.upper
        if var.var_type in (VarType.BINARY, VarType.INTEGER):
            integrality[var.index] = 1
    return c, a_matrix, np.array(con_lb), np.array(con_ub), integrality, lower, upper


def solve_with_scipy(model: IlpModel, time_limit: float | None = None) -> Solution:
    """Solve *model* with ``scipy.optimize.milp`` (HiGHS).

    Parameters
    ----------
    model:
        The ILP to solve.
    time_limit:
        Optional wall-clock limit in seconds passed to HiGHS.
    """
    c, a_matrix, con_lb, con_ub, integrality, lower, upper = _lower_model(model)
    constraints = []
    if model.constraints:
        constraints.append(LinearConstraint(a_matrix, con_lb, con_ub))
    options: dict = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lower, upper),
        options=options,
    )
    # scipy milp status codes: 0 optimal, 1 iteration/time limit, 2 infeasible,
    # 3 unbounded, 4 other.
    if result.status == 0:
        status = SolveStatus.OPTIMAL
    elif result.status == 1:
        status = SolveStatus.TIME_LIMIT if result.x is not None else SolveStatus.ERROR
    elif result.status == 2:
        status = SolveStatus.INFEASIBLE
    elif result.status == 3:
        status = SolveStatus.UNBOUNDED
    else:
        status = SolveStatus.ERROR

    if result.x is None or not status.is_feasible:
        return Solution(status=status)
    values = {i: float(v) for i, v in enumerate(result.x)}
    return Solution(status=status, objective=float(result.fun), values=values)

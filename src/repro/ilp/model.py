"""A small integer-linear-programming modelling layer.

The paper formulates circuit staging as a binary ILP and hands it to an
off-the-shelf solver (PuLP + HiGHS).  This module provides the modelling
front-end of that substrate: variables, linear expressions, linear
constraints and a minimisation objective, collected in an :class:`IlpModel`
that solver backends (:mod:`repro.ilp.scipy_backend`,
:mod:`repro.ilp.branch_bound`) translate into their native form.

The expression algebra intentionally supports only what linear programs
need: ``var * const``, ``expr + expr``, ``expr - expr``, comparisons against
expressions or constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "VarType",
    "Variable",
    "LinExpr",
    "Constraint",
    "ConstraintSense",
    "IlpModel",
    "SolveStatus",
    "Solution",
    "lin_sum",
]


class VarType(enum.Enum):
    """Kind of decision variable."""

    BINARY = "binary"
    INTEGER = "integer"
    CONTINUOUS = "continuous"


class ConstraintSense(enum.Enum):
    """Direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"
    ERROR = "error"

    @property
    def is_feasible(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.TIME_LIMIT)


@dataclass(frozen=True)
class Variable:
    """A decision variable.  Identity is by ``index`` within its model."""

    index: int
    name: str
    var_type: VarType
    lower: float = 0.0
    upper: float = 1.0

    # -- expression algebra -------------------------------------------------
    def __add__(self, other) -> "LinExpr":
        return LinExpr.from_term(self) + other

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return LinExpr.from_term(self) - other

    def __rsub__(self, other) -> "LinExpr":
        return (-1.0 * self) + other

    def __mul__(self, scalar: float) -> "LinExpr":
        return LinExpr({self.index: float(scalar)}, 0.0)

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other) -> "Constraint":
        return LinExpr.from_term(self) <= other

    def __ge__(self, other) -> "Constraint":
        return LinExpr.from_term(self) >= other

    # Note: __eq__ is kept as identity (dataclass) so Variables stay hashable;
    # use ``expr == const`` through LinExpr via IlpModel.add_eq or build the
    # LinExpr explicitly.
    def eq(self, other) -> "Constraint":
        return LinExpr.from_term(self).eq(other)


@dataclass
class LinExpr:
    """A linear expression ``sum(coeff_i * var_i) + constant``."""

    coeffs: dict[int, float] = field(default_factory=dict)
    constant: float = 0.0

    @classmethod
    def from_term(cls, var: Variable, coeff: float = 1.0) -> "LinExpr":
        return cls({var.index: float(coeff)}, 0.0)

    @classmethod
    def constant_expr(cls, value: float) -> "LinExpr":
        return cls({}, float(value))

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.constant)

    def _coerce(self, other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return LinExpr.from_term(other)
        if isinstance(other, (int, float)):
            return LinExpr.constant_expr(float(other))
        raise TypeError(f"cannot combine LinExpr with {type(other)!r}")

    def __add__(self, other) -> "LinExpr":
        other = self._coerce(other)
        out = self.copy()
        for idx, coeff in other.coeffs.items():
            out.coeffs[idx] = out.coeffs.get(idx, 0.0) + coeff
        out.constant += other.constant
        return out

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return self._coerce(other) - self

    def __mul__(self, scalar: float) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            raise TypeError("LinExpr can only be scaled by a constant")
        return LinExpr({i: c * scalar for i, c in self.coeffs.items()}, self.constant * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other) -> "Constraint":
        return Constraint(self - self._coerce(other), ConstraintSense.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - self._coerce(other), ConstraintSense.GE)

    def eq(self, other) -> "Constraint":
        return Constraint(self - self._coerce(other), ConstraintSense.EQ)

    def evaluate(self, values: Mapping[int, float]) -> float:
        return self.constant + sum(c * values.get(i, 0.0) for i, c in self.coeffs.items())


def lin_sum(terms: Iterable) -> LinExpr:
    """Sum variables/expressions/constants into a single :class:`LinExpr`."""
    total = LinExpr()
    for term in terms:
        total = total + term
    return total


@dataclass
class Constraint:
    """``expr (<=|>=|==) 0`` — the right-hand side has been folded into *expr*."""

    expr: LinExpr
    sense: ConstraintSense
    name: str = ""

    def is_satisfied(self, values: Mapping[int, float], tol: float = 1e-6) -> bool:
        value = self.expr.evaluate(values)
        if self.sense is ConstraintSense.LE:
            return value <= tol
        if self.sense is ConstraintSense.GE:
            return value >= -tol
        return abs(value) <= tol


@dataclass
class Solution:
    """Result of a solver backend."""

    status: SolveStatus
    objective: float | None = None
    values: dict[int, float] = field(default_factory=dict)
    #: Wall seconds of this solve, stamped by :func:`repro.ilp.solve` — a
    #: per-call diagnostic for callers timing individual solves.
    wall_seconds: float = 0.0

    def value(self, var: Variable) -> float:
        return self.values.get(var.index, 0.0)

    def int_value(self, var: Variable) -> int:
        return int(round(self.value(var)))


class IlpModel:
    """Container for variables, constraints and the objective."""

    def __init__(self, name: str = "ilp"):
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()

    # -- variable creation ----------------------------------------------------

    def binary_var(self, name: str) -> Variable:
        return self._add_var(name, VarType.BINARY, 0.0, 1.0)

    def integer_var(self, name: str, lower: float = 0.0, upper: float = 1e9) -> Variable:
        return self._add_var(name, VarType.INTEGER, lower, upper)

    def continuous_var(self, name: str, lower: float = 0.0, upper: float = 1e18) -> Variable:
        return self._add_var(name, VarType.CONTINUOUS, lower, upper)

    def _add_var(self, name: str, var_type: VarType, lower: float, upper: float) -> Variable:
        var = Variable(len(self.variables), name, var_type, lower, upper)
        self.variables.append(var)
        return var

    # -- constraints / objective ----------------------------------------------

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def add_eq(self, expr, value, name: str = "") -> Constraint:
        if isinstance(expr, Variable):
            expr = LinExpr.from_term(expr)
        return self.add_constraint(expr.eq(value), name)

    def minimize(self, expr) -> None:
        if isinstance(expr, Variable):
            expr = LinExpr.from_term(expr)
        self.objective = expr

    # -- introspection ----------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def check_solution(self, values: Mapping[int, float], tol: float = 1e-6) -> bool:
        """Verify that *values* satisfy every constraint and integrality."""
        for var in self.variables:
            v = values.get(var.index, 0.0)
            if v < var.lower - tol or v > var.upper + tol:
                return False
            if var.var_type in (VarType.BINARY, VarType.INTEGER) and abs(v - round(v)) > tol:
                return False
        return all(c.is_satisfied(values, tol) for c in self.constraints)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<IlpModel {self.name!r}: {self.num_variables} vars, "
            f"{self.num_constraints} constraints>"
        )

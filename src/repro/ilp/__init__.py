"""Integer linear programming substrate (modelling layer + solver backends)."""

from __future__ import annotations

import time

from .branch_bound import solve_with_branch_and_bound
from .model import (
    Constraint,
    ConstraintSense,
    IlpModel,
    LinExpr,
    Solution,
    SolveStatus,
    Variable,
    VarType,
    lin_sum,
)
from .scipy_backend import solve_with_scipy

__all__ = [
    "IlpModel",
    "LinExpr",
    "Variable",
    "VarType",
    "Constraint",
    "ConstraintSense",
    "Solution",
    "SolveStatus",
    "lin_sum",
    "solve",
    "solve_with_scipy",
    "solve_with_branch_and_bound",
    "BACKENDS",
]

BACKENDS = {
    "scipy": solve_with_scipy,
    "highs": solve_with_scipy,
    "branch-and-bound": solve_with_branch_and_bound,
}


def solve(model: IlpModel, backend: str = "scipy", time_limit: float | None = None) -> Solution:
    """Solve *model* with the named backend (``scipy``/``highs`` or ``branch-and-bound``).

    The returned solution carries the measured ``wall_seconds`` of this
    solve as a per-call diagnostic for callers that time individual
    solves.  (The staging loop's
    :attr:`repro.core.stage.StagingResult.solver_seconds` is measured
    separately around :func:`repro.core.stage.solve_staging` so that it
    also covers model construction and infeasible candidates.)
    """
    try:
        solver = BACKENDS[backend]
    except KeyError as exc:
        raise ValueError(f"unknown ILP backend {backend!r}; known: {sorted(BACKENDS)}") from exc
    start = time.perf_counter()
    solution = solver(model, time_limit=time_limit)
    solution.wall_seconds = time.perf_counter() - start
    return solution

"""Experiment drivers and text reporting for the paper's tables and figures."""

from .experiments import (
    figure5_weak_scaling,
    figure6_breakdown,
    figure7_offloading,
    figure8_offload_scaling,
    figure9_staging,
    figure10_kernelization,
    figure13_pruning_threshold,
    figure14_24_per_circuit_cost,
    figure25_hhl_case_study,
    figure26_36_preprocessing_time,
    planner_preset_comparison,
    session_amortization,
    table1_circuit_sizes,
)
from .reporting import format_series, format_table, geometric_mean

__all__ = [
    "table1_circuit_sizes",
    "figure5_weak_scaling",
    "figure6_breakdown",
    "figure7_offloading",
    "figure8_offload_scaling",
    "figure9_staging",
    "figure10_kernelization",
    "figure13_pruning_threshold",
    "figure14_24_per_circuit_cost",
    "figure25_hhl_case_study",
    "figure26_36_preprocessing_time",
    "planner_preset_comparison",
    "session_amortization",
    "format_table",
    "format_series",
    "geometric_mean",
]

"""Plain-text reporting helpers.

The paper's evaluation is a set of figures; this reproduction regenerates
the underlying numbers and prints them as aligned text tables (no plotting
dependencies are available offline).  Each benchmark writes its table to
stdout so the pytest-benchmark output doubles as the experiment record.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "geometric_mean"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0 if the input is empty)."""
    values = [float(v) for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    log_sum = 0.0
    for v in values:
        log_sum += __import__("math").log(v)
    return float(__import__("math").exp(log_sum / len(values)))


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Format a list of row-dicts as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in table)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in table:
        lines.append(" | ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Format several aligned series (one per simulator) against an x axis."""
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, title=title)

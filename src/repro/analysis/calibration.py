"""Cost-model calibration (paper Section VII-A).

The KERNELIZE cost function contains constants that the paper obtains by
micro-benchmarking the target GPU: the execution time of fused matrices of
each width, the time to stream a micro-batch of amplitudes through shared
memory, and per-gate-type application times.  This module performs the same
calibration against whatever execution substrate is available — here the
NumPy engine — so that the cost model's *relative* shape (which width is
most cost-efficient, how much a diagonal gate saves, ...) is measured rather
than guessed.

The calibrated :class:`repro.cluster.costmodel.CostModel` can be passed to
:func:`repro.core.partition` and to all the benchmark drivers; the default
cost model in :mod:`repro.cluster.costmodel` corresponds to an A100-like
device and is used when no calibration is run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..circuits.gates import Gate, make_gate
from ..cluster.costmodel import CostModel
from ..sim.apply import apply_matrix, tracked_empty

__all__ = ["CalibrationResult", "calibrate_cost_model", "measure_fusion_times", "measure_gate_times"]


@dataclass
class CalibrationResult:
    """Raw measurements plus the cost model fitted from them."""

    fusion_seconds_per_width: dict[int, float]
    gate_seconds: dict[str, float]
    shm_load_seconds: float
    state_qubits: int
    cost_model: CostModel = field(default=None)

    def summary(self) -> list[dict]:
        rows = [
            {"quantity": f"fusion width {w}", "seconds": s}
            for w, s in sorted(self.fusion_seconds_per_width.items())
        ]
        rows += [
            {"quantity": f"gate {name}", "seconds": s}
            for name, s in sorted(self.gate_seconds.items())
        ]
        rows.append({"quantity": "shm load", "seconds": self.shm_load_seconds})
        return rows


def _time_call(fn: Callable[[], object], repeats: int) -> float:
    """Median wall-clock seconds of *fn* over *repeats* calls."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def measure_fusion_times(
    state_qubits: int = 16,
    widths: Sequence[int] = range(1, 8),
    repeats: int = 3,
    seed: int = 0,
) -> dict[int, float]:
    """Measure the time to apply one fused ``2^w × 2^w`` matrix to a state.

    This is the analogue of the paper's cuQuantum apply-matrix profiling:
    the time is dominated by streaming the state once plus ``O(2^w)`` work
    per amplitude, so it is flat for small widths and grows geometrically
    beyond the cache-friendly sizes.
    """
    rng = np.random.default_rng(seed)
    state = rng.normal(size=1 << state_qubits) + 1j * rng.normal(size=1 << state_qubits)
    state /= np.linalg.norm(state)
    out = tracked_empty(state.size)
    timings: dict[int, float] = {}
    for width in widths:
        # A random unitary of the requested width (QR of a Gaussian matrix).
        dim = 1 << width
        raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
        unitary, _ = np.linalg.qr(raw)
        qubits = list(range(width))
        timings[int(width)] = _time_call(
            lambda u=unitary, q=qubits: apply_matrix(state, u, q, out=out), repeats
        )
    return timings


def measure_gate_times(
    state_qubits: int = 16,
    gate_samples: Sequence[Gate] | None = None,
    repeats: int = 3,
    seed: int = 0,
) -> dict[str, float]:
    """Measure per-gate application times for representative gate classes."""
    if gate_samples is None:
        gate_samples = [
            make_gate("h", [0]),
            make_gate("rz", [1], [0.4]),
            make_gate("cx", [0, 1]),
            make_gate("cp", [2, 3], [0.7]),
            make_gate("ccx", [0, 1, 2]),
        ]
    rng = np.random.default_rng(seed)
    state = rng.normal(size=1 << state_qubits) + 1j * rng.normal(size=1 << state_qubits)
    state /= np.linalg.norm(state)
    buf = tracked_empty(state.size)
    out: dict[str, float] = {}
    for gate in gate_samples:
        out[gate.name] = _time_call(
            lambda g=gate: apply_matrix(state, g.matrix(), g.qubits, out=buf), repeats
        )
    return out


def calibrate_cost_model(
    state_qubits: int = 16,
    max_fusion_qubits: int = 7,
    repeats: int = 3,
    seed: int = 0,
) -> CalibrationResult:
    """Build a :class:`CostModel` from measurements on the NumPy engine.

    The fusion-cost table is normalised so that a 1-qubit fused kernel costs
    1.0 unit (the same normalisation the default table uses), the
    shared-memory load constant is taken as the single-qubit apply time
    (one full streaming pass over the state), and per-gate costs are scaled
    relative to it.
    """
    fusion_seconds = measure_fusion_times(
        state_qubits, range(1, max_fusion_qubits + 1), repeats, seed
    )
    gate_seconds = measure_gate_times(state_qubits, None, repeats, seed)
    unit = fusion_seconds[1]
    shm_load_seconds = unit

    fusion_table = {0: 0.5}
    for width, seconds in fusion_seconds.items():
        fusion_table[width] = max(seconds / unit, 1e-6)
    gate_table = {
        "default": max(gate_seconds.get("h", unit) / unit, 1e-6) * 0.1,
        "diagonal": max(gate_seconds.get("rz", unit) / unit, 1e-6) * 0.05,
        "control": max(gate_seconds.get("cx", unit) / unit, 1e-6) * 0.07,
    }
    model = CostModel(
        fusion_cost_per_qubits=fusion_table,
        shm_load_cost=1.0,
        shm_gate_cost=gate_table,
        max_fusion_qubits=max_fusion_qubits,
        seconds_per_unit=unit * 2.0 ** (28 - state_qubits),
    )
    return CalibrationResult(
        fusion_seconds_per_width=fusion_seconds,
        gate_seconds=gate_seconds,
        shm_load_seconds=shm_load_seconds,
        state_qubits=state_qubits,
        cost_model=model,
    )

"""Experiment drivers — one function per table / figure of the paper.

Every driver is parameterised by problem size so that the same code path
can run both the quick "smoke" configuration used by the test suite and
the paper-scale configuration used by the benchmark harness.  The mapping
from paper experiment to driver is recorded in DESIGN.md and the measured
outputs in EXPERIMENTS.md.

All drivers return plain dictionaries / row lists, which
:mod:`repro.analysis.reporting` renders as text tables.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..baselines import AtlasSimulator, QdaoSimulator, SIMULATORS
from ..circuits.library import CIRCUIT_FAMILIES, PAPER_FAMILIES, get_circuit, hhl
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import MachineConfig
from ..core.greedy_kernelize import greedy_kernelize
from ..core.kernelize import KernelizeConfig, kernelize
from ..core.ordered_kernelize import ordered_kernelize
from ..core.stage import stage_circuit
from ..core.stage_heuristics import snuqs_stage_circuit
from .reporting import geometric_mean

__all__ = [
    "table1_circuit_sizes",
    "figure5_weak_scaling",
    "figure6_breakdown",
    "figure7_offloading",
    "figure8_offload_scaling",
    "figure9_staging",
    "figure10_kernelization",
    "figure13_pruning_threshold",
    "figure14_24_per_circuit_cost",
    "figure25_hhl_case_study",
    "figure26_36_preprocessing_time",
]


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def table1_circuit_sizes(
    families: Sequence[str] = PAPER_FAMILIES,
    qubit_range: Iterable[int] = range(28, 37),
) -> list[dict]:
    """Gate counts of every benchmark circuit (paper Table I)."""
    rows = []
    for family in families:
        row: dict[str, object] = {"circuit": family}
        for n in qubit_range:
            row[str(n)] = len(get_circuit(family, n))
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 5 / 6 — end-to-end weak scaling and time breakdown
# ---------------------------------------------------------------------------

def _machine_for(num_qubits: int, num_gpus: int, local_qubits: int) -> MachineConfig:
    return MachineConfig.for_circuit(
        num_qubits, num_gpus=num_gpus, local_qubits=local_qubits
    )


def figure5_weak_scaling(
    families: Sequence[str] = PAPER_FAMILIES,
    gpu_counts: Sequence[int] = (1, 4, 16, 64, 256),
    local_qubits: int = 28,
    simulators: Sequence[str] = ("atlas", "hyquas", "cuquantum", "qiskit"),
    pruning_threshold: int = 32,
    ilp_time_limit: float = 60.0,
) -> dict[str, list[dict]]:
    """Weak-scaling comparison (Figure 5).

    For each circuit family and GPU count ``g``, the circuit has
    ``local_qubits + log2(g)`` qubits, mirroring the paper's setup (28 local
    qubits, 0–8 non-local qubits).  Returns one row list per family with the
    modelled simulation time of every simulator and Atlas's speedup over the
    best baseline.
    """
    results: dict[str, list[dict]] = {}
    sims = {}
    for name in simulators:
        if name == "atlas":
            sims[name] = AtlasSimulator(
                pruning_threshold=pruning_threshold, ilp_time_limit=ilp_time_limit
            )
        else:
            sims[name] = SIMULATORS[name]()
    for family in families:
        rows = []
        for gpus in gpu_counts:
            non_local = int(math.log2(gpus))
            num_qubits = local_qubits + non_local
            circuit = get_circuit(family, num_qubits)
            machine = _machine_for(num_qubits, gpus, local_qubits)
            row: dict[str, object] = {"gpus": gpus, "qubits": num_qubits}
            for name, sim in sims.items():
                breakdown = sim.model_time(circuit, machine)
                row[name] = breakdown.total_seconds
            baselines = [row[n] for n in sims if n != "atlas"]
            if "atlas" in sims and baselines:
                row["speedup_vs_best_baseline"] = min(baselines) / row["atlas"]
            rows.append(row)
        results[family] = rows
    return results


def figure6_breakdown(
    families: Sequence[str] = PAPER_FAMILIES,
    gpu_counts: Sequence[int] = (1, 4, 16, 64, 256),
    local_qubits: int = 28,
    pruning_threshold: int = 32,
    ilp_time_limit: float = 60.0,
) -> list[dict]:
    """Communication / computation breakdown of Atlas (Figure 6)."""
    atlas = AtlasSimulator(
        pruning_threshold=pruning_threshold, ilp_time_limit=ilp_time_limit
    )
    rows = []
    for gpus in gpu_counts:
        non_local = int(math.log2(gpus))
        num_qubits = local_qubits + non_local
        totals, comms = [], []
        for family in families:
            circuit = get_circuit(family, num_qubits)
            machine = _machine_for(num_qubits, gpus, local_qubits)
            breakdown = atlas.model_time(circuit, machine)
            totals.append(breakdown.total_seconds)
            comms.append(breakdown.communication_seconds + breakdown.offload_seconds)
        avg_total = sum(totals) / len(totals)
        avg_comm = sum(comms) / len(comms)
        rows.append(
            {
                "gpus": gpus,
                "avg_total_s": avg_total,
                "avg_comm_s": avg_comm,
                "comm_fraction": avg_comm / avg_total if avg_total else 0.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 7 / 8 — DRAM offloading
# ---------------------------------------------------------------------------

def _offload_gpu_memory(local_qubits: int) -> int:
    """GPU memory (bytes) that holds exactly one ``2^L`` shard.

    Mirrors the paper's offloading setup, where 28 local qubits saturate the
    usable device memory and every additional qubit forces the state into
    node DRAM (Section VII-C).
    """
    return (1 << local_qubits) * 16


def figure7_offloading(
    qubit_range: Sequence[int] = (28, 29, 30, 31, 32),
    local_qubits: int = 28,
    family: str = "qft",
    pruning_threshold: int = 32,
) -> list[dict]:
    """Atlas vs QDAO with DRAM offloading on one GPU (Figure 7)."""
    atlas = AtlasSimulator(pruning_threshold=pruning_threshold)
    # QDAO's scheduling granularity t scales with the on-GPU qubit count the
    # same way the paper's best setting does (m=28, t=19).
    qdao = QdaoSimulator(
        on_gpu_qubits=local_qubits, group_qubits=max(2, local_qubits - 9)
    )
    rows = []
    for n in qubit_range:
        circuit = get_circuit(family, n)
        machine = MachineConfig.for_circuit(
            n, num_gpus=1, local_qubits=min(local_qubits, n),
            gpu_memory_bytes=_offload_gpu_memory(local_qubits),
        )
        atlas_time = atlas.model_time(circuit, machine).total_seconds
        qdao_time = qdao.model_time(circuit, machine).total_seconds
        rows.append(
            {
                "qubits": n,
                "atlas_s": atlas_time,
                "qdao_s": qdao_time,
                "speedup": qdao_time / atlas_time if atlas_time else float("inf"),
            }
        )
    return rows


def figure8_offload_scaling(
    num_qubits: int = 32,
    local_qubits: int = 28,
    gpu_counts: Sequence[int] = (1, 2, 4),
    family: str = "qft",
    pruning_threshold: int = 32,
) -> list[dict]:
    """Atlas DRAM-offloading scaling across GPUs (Figure 8)."""
    atlas = AtlasSimulator(pruning_threshold=pruning_threshold)
    qdao = QdaoSimulator(
        on_gpu_qubits=local_qubits, group_qubits=max(2, local_qubits - 9)
    )
    circuit = get_circuit(family, num_qubits)
    rows = []
    for gpus in gpu_counts:
        machine = MachineConfig.for_circuit(
            num_qubits, num_gpus=gpus, local_qubits=local_qubits,
            gpu_memory_bytes=_offload_gpu_memory(local_qubits),
        )
        atlas_time = atlas.model_time(circuit, machine).total_seconds
        qdao_time = qdao.model_time(circuit, machine).total_seconds
        rows.append({"gpus": gpus, "atlas_s": atlas_time, "qdao_s": qdao_time})
    return rows


# ---------------------------------------------------------------------------
# Figures 9 / 12 — staging quality
# ---------------------------------------------------------------------------

def figure9_staging(
    num_qubits: int = 31,
    local_qubit_range: Sequence[int] | None = None,
    families: Sequence[str] = PAPER_FAMILIES,
    regional_qubits: int = 2,
    ilp_backend: str = "scipy",
    ilp_time_limit: float = 60.0,
) -> list[dict]:
    """Geometric-mean stage counts, Atlas (ILP) vs SnuQS greedy (Figures 9/12).

    ``local_qubit_range`` defaults to every odd L from 15 to ``num_qubits``
    at 31 qubits (the paper's x-axis); callers shrink it for smoke runs.
    """
    if local_qubit_range is None:
        local_qubit_range = list(range(15, num_qubits + 1, 2))
    rows = []
    for local in local_qubit_range:
        non_local = num_qubits - local
        regional = min(regional_qubits, non_local)
        global_ = non_local - regional
        atlas_counts, snuqs_counts = [], []
        for family in families:
            circuit = get_circuit(family, num_qubits)
            atlas_result = stage_circuit(
                circuit, local, regional, global_,
                backend=ilp_backend, time_limit=ilp_time_limit,
            )
            snuqs_result = snuqs_stage_circuit(circuit, local, regional, global_)
            atlas_counts.append(atlas_result.num_stages)
            snuqs_counts.append(snuqs_result.num_stages)
        rows.append(
            {
                "local_qubits": local,
                "atlas_geomean_stages": geometric_mean(atlas_counts),
                "snuqs_geomean_stages": geometric_mean(snuqs_counts),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 10 / 13 / 14–24 / 25 — kernelization quality
# ---------------------------------------------------------------------------

def figure10_kernelization(
    families: Sequence[str] = PAPER_FAMILIES,
    qubit_range: Sequence[int] = tuple(range(28, 37)),
    cost_model: CostModel = DEFAULT_COST_MODEL,
    pruning_threshold: int = 32,
) -> list[dict]:
    """Relative geometric-mean kernelization cost vs the greedy baseline (Figure 10)."""
    config = KernelizeConfig(pruning_threshold=pruning_threshold)
    rows = []
    all_ratios = []
    for family in families:
        ratios = []
        for n in qubit_range:
            circuit = get_circuit(family, n)
            atlas_cost = kernelize(circuit, cost_model, config).total_cost
            greedy_cost = greedy_kernelize(circuit, cost_model).total_cost
            ratios.append(atlas_cost / greedy_cost)
        rel = geometric_mean(ratios)
        all_ratios.extend(ratios)
        rows.append({"circuit": family, "relative_cost": rel})
    rows.append({"circuit": "geomean", "relative_cost": geometric_mean(all_ratios)})
    return rows


def figure13_pruning_threshold(
    thresholds: Sequence[int] = (4, 16, 50, 100, 200, 500),
    families: Sequence[str] = PAPER_FAMILIES,
    num_qubits: int = 28,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> list[dict]:
    """Pruning-threshold sweep: cost vs preprocessing time (Figure 13)."""
    circuits = [get_circuit(f, num_qubits) for f in families]
    greedy_costs = [greedy_kernelize(c, cost_model).total_cost for c in circuits]
    rows = []
    for threshold in thresholds:
        config = KernelizeConfig(pruning_threshold=threshold)
        ratios = []
        start = time.perf_counter()
        for circuit, greedy_cost in zip(circuits, greedy_costs):
            cost = kernelize(circuit, cost_model, config).total_cost
            ratios.append(cost / greedy_cost)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "threshold": threshold,
                "relative_cost": geometric_mean(ratios),
                "preprocessing_s": elapsed / len(circuits),
            }
        )
    # The ORDERED-KERNELIZE reference point ("Atlas-Naive" in the figure).
    start = time.perf_counter()
    naive_ratios = [
        ordered_kernelize(c, cost_model).total_cost / g
        for c, g in zip(circuits, greedy_costs)
    ]
    elapsed = time.perf_counter() - start
    rows.append(
        {
            "threshold": "naive",
            "relative_cost": geometric_mean(naive_ratios),
            "preprocessing_s": elapsed / len(circuits),
        }
    )
    return rows


def figure14_24_per_circuit_cost(
    family: str,
    qubit_range: Sequence[int] = tuple(range(28, 37)),
    cost_model: CostModel = DEFAULT_COST_MODEL,
    pruning_threshold: int = 32,
) -> list[dict]:
    """Per-family kernelization cost: Atlas / Atlas-Naive / greedy (Figures 14–24)."""
    config = KernelizeConfig(pruning_threshold=pruning_threshold)
    rows = []
    for n in qubit_range:
        circuit = get_circuit(family, n)
        rows.append(
            {
                "qubits": n,
                "atlas": kernelize(circuit, cost_model, config).total_cost,
                "atlas_naive": ordered_kernelize(circuit, cost_model).total_cost,
                "greedy": greedy_kernelize(circuit, cost_model).total_cost,
            }
        )
    return rows


def figure25_hhl_case_study(
    hhl_sizes: Sequence[int] = (4, 7, 9, 10),
    cost_model: CostModel = DEFAULT_COST_MODEL,
    pruning_threshold: int = 16,
) -> list[dict]:
    """hhl case study: many gates, few qubits (Table II + Figures 25/37)."""
    config = KernelizeConfig(pruning_threshold=pruning_threshold)
    rows = []
    for n in hhl_sizes:
        circuit = hhl(n)
        t0 = time.perf_counter()
        atlas_cost = kernelize(circuit, cost_model, config).total_cost
        atlas_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        naive_cost = ordered_kernelize(circuit, cost_model).total_cost
        naive_time = time.perf_counter() - t0
        greedy_cost = greedy_kernelize(circuit, cost_model).total_cost
        rows.append(
            {
                "qubits": n,
                "gates": len(circuit),
                "atlas": atlas_cost,
                "atlas_naive": naive_cost,
                "greedy": greedy_cost,
                "atlas_time_s": atlas_time,
                "naive_time_s": naive_time,
            }
        )
    return rows


def figure26_36_preprocessing_time(
    family: str,
    qubit_range: Sequence[int] = tuple(range(28, 37)),
    cost_model: CostModel = DEFAULT_COST_MODEL,
    pruning_threshold: int = 32,
) -> list[dict]:
    """Per-family kernelization preprocessing time (Figures 26–36)."""
    config = KernelizeConfig(pruning_threshold=pruning_threshold)
    rows = []
    for n in qubit_range:
        circuit = get_circuit(family, n)
        timings = {}
        t0 = time.perf_counter()
        kernelize(circuit, cost_model, config)
        timings["atlas_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        ordered_kernelize(circuit, cost_model)
        timings["atlas_naive_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        greedy_kernelize(circuit, cost_model)
        timings["greedy_s"] = time.perf_counter() - t0
        rows.append({"qubits": n, **timings})
    return rows

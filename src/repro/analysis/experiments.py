"""Experiment drivers — one function per table / figure of the paper.

Every driver is parameterised by problem size so that the same code path
can run both the quick "smoke" configuration used by the test suite and
the paper-scale configuration used by the benchmark harness.  The mapping
from paper experiment to driver is recorded in DESIGN.md and the measured
outputs in EXPERIMENTS.md.

All drivers return plain dictionaries / row lists, which
:mod:`repro.analysis.reporting` renders as text tables.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..baselines import QdaoSimulator
from ..circuits.library import CIRCUIT_FAMILIES, PAPER_FAMILIES, get_circuit, hhl, vqc
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import MachineConfig
from ..core.greedy_kernelize import greedy_kernelize
from ..core.kernelize import KernelizeConfig, kernelize
from ..core.ordered_kernelize import ordered_kernelize
from ..core.stage import stage_circuit
from ..core.stage_heuristics import snuqs_stage_circuit
from ..planner import resolve_planner
from ..session import Session
from .reporting import geometric_mean

__all__ = [
    "table1_circuit_sizes",
    "figure5_weak_scaling",
    "figure6_breakdown",
    "figure7_offloading",
    "figure8_offload_scaling",
    "figure9_staging",
    "figure10_kernelization",
    "figure13_pruning_threshold",
    "figure14_24_per_circuit_cost",
    "figure25_hhl_case_study",
    "figure26_36_preprocessing_time",
    "planner_preset_comparison",
    "session_amortization",
]


def _atlas_session(
    pruning_threshold: int, ilp_time_limit: float | None = 120.0
) -> Session:
    """A Session configured like the paper's Atlas pipeline.

    The modelled-comparison drivers below run every simulator through this
    one facade: Atlas itself through the session's own ILP+DP pipeline
    (``backend="incore"``), the baselines through their registered
    modelled backends — one loop, one plan cache.
    """
    return Session(
        kernelize_config=KernelizeConfig(pruning_threshold=pruning_threshold),
        ilp_time_limit=ilp_time_limit,
    )


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def table1_circuit_sizes(
    families: Sequence[str] = PAPER_FAMILIES,
    qubit_range: Iterable[int] = range(28, 37),
) -> list[dict]:
    """Gate counts of every benchmark circuit (paper Table I)."""
    rows = []
    for family in families:
        row: dict[str, object] = {"circuit": family}
        for n in qubit_range:
            row[str(n)] = len(get_circuit(family, n))
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 5 / 6 — end-to-end weak scaling and time breakdown
# ---------------------------------------------------------------------------

def _machine_for(num_qubits: int, num_shards: int, local_qubits: int) -> MachineConfig:
    return MachineConfig.for_circuit(
        num_qubits, num_shards=num_shards, local_qubits=local_qubits
    )


def figure5_weak_scaling(
    families: Sequence[str] = PAPER_FAMILIES,
    gpu_counts: Sequence[int] = (1, 4, 16, 64, 256),
    local_qubits: int = 28,
    simulators: Sequence[str] = ("atlas", "hyquas", "cuquantum", "qiskit"),
    pruning_threshold: int = 32,
    ilp_time_limit: float = 60.0,
) -> dict[str, list[dict]]:
    """Weak-scaling comparison (Figure 5).

    For each circuit family and GPU count ``g``, the circuit has
    ``local_qubits + log2(g)`` qubits, mirroring the paper's setup (28 local
    qubits, 0–8 non-local qubits).  Returns one row list per family with the
    modelled simulation time of every simulator and Atlas's speedup over the
    best baseline.

    Every curve goes through one :class:`repro.session.Session`: Atlas is
    the session's own ILP+DP pipeline, each baseline is its registered
    modelled backend.
    """
    results: dict[str, list[dict]] = {}
    with _atlas_session(pruning_threshold, ilp_time_limit) as session:
        for family in families:
            rows = []
            for gpus in gpu_counts:
                non_local = int(math.log2(gpus))
                num_qubits = local_qubits + non_local
                circuit = get_circuit(family, num_qubits)
                machine = _machine_for(num_qubits, gpus, local_qubits)
                row: dict[str, object] = {"gpus": gpus, "qubits": num_qubits}
                for name in simulators:
                    backend = "incore" if name == "atlas" else name
                    result = session.run(
                        circuit, machine=machine, backend=backend, execute=False
                    ).modelled()
                    row[name] = result.timing.total_seconds
                baselines = [row[n] for n in simulators if n != "atlas"]
                if "atlas" in simulators and baselines:
                    row["speedup_vs_best_baseline"] = min(baselines) / row["atlas"]
                rows.append(row)
            results[family] = rows
    return results


def figure6_breakdown(
    families: Sequence[str] = PAPER_FAMILIES,
    gpu_counts: Sequence[int] = (1, 4, 16, 64, 256),
    local_qubits: int = 28,
    pruning_threshold: int = 32,
    ilp_time_limit: float = 60.0,
) -> list[dict]:
    """Communication / computation breakdown of Atlas (Figure 6)."""
    rows = []
    with _atlas_session(pruning_threshold, ilp_time_limit) as session:
        for gpus in gpu_counts:
            non_local = int(math.log2(gpus))
            num_qubits = local_qubits + non_local
            totals, comms = [], []
            for family in families:
                circuit = get_circuit(family, num_qubits)
                machine = _machine_for(num_qubits, gpus, local_qubits)
                breakdown = session.run(
                    circuit, machine=machine, backend="incore", execute=False
                ).modelled().timing
                totals.append(breakdown.total_seconds)
                comms.append(breakdown.communication_seconds + breakdown.offload_seconds)
            avg_total = sum(totals) / len(totals)
            avg_comm = sum(comms) / len(comms)
            rows.append(
                {
                    "gpus": gpus,
                    "avg_total_s": avg_total,
                    "avg_comm_s": avg_comm,
                    "comm_fraction": avg_comm / avg_total if avg_total else 0.0,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 7 / 8 — DRAM offloading
# ---------------------------------------------------------------------------

def _offload_gpu_memory(local_qubits: int) -> int:
    """GPU memory (bytes) that holds exactly one ``2^L`` shard.

    Mirrors the paper's offloading setup, where 28 local qubits saturate the
    usable device memory and every additional qubit forces the state into
    node DRAM (Section VII-C).
    """
    return (1 << local_qubits) * 16


def figure7_offloading(
    qubit_range: Sequence[int] = (28, 29, 30, 31, 32),
    local_qubits: int = 28,
    family: str = "qft",
    pruning_threshold: int = 32,
) -> list[dict]:
    """Atlas vs QDAO with DRAM offloading on one GPU (Figure 7)."""
    # QDAO's scheduling granularity t scales with the on-GPU qubit count the
    # same way the paper's best setting does (m=28, t=19).  QDAO's block
    # streaming does not produce an ExecutionPlan, so it stays a direct
    # model rather than a session backend.
    qdao = QdaoSimulator(
        on_gpu_qubits=local_qubits, group_qubits=max(2, local_qubits - 9)
    )
    rows = []
    with _atlas_session(pruning_threshold) as session:
        for n in qubit_range:
            circuit = get_circuit(family, n)
            machine = MachineConfig.for_circuit(
                n, num_shards=1, local_qubits=min(local_qubits, n),
                gpu_memory_bytes=_offload_gpu_memory(local_qubits),
            )
            atlas_time = session.run(
                circuit, machine=machine, backend="incore", execute=False
            ).modelled().timing.total_seconds
            qdao_time = qdao.model_time(circuit, machine).total_seconds
            rows.append(
                {
                    "qubits": n,
                    "atlas_s": atlas_time,
                    "qdao_s": qdao_time,
                    "speedup": qdao_time / atlas_time if atlas_time else float("inf"),
                }
            )
    return rows


def figure8_offload_scaling(
    num_qubits: int = 32,
    local_qubits: int = 28,
    gpu_counts: Sequence[int] = (1, 2, 4),
    family: str = "qft",
    pruning_threshold: int = 32,
) -> list[dict]:
    """Atlas DRAM-offloading scaling across GPUs (Figure 8)."""
    qdao = QdaoSimulator(
        on_gpu_qubits=local_qubits, group_qubits=max(2, local_qubits - 9)
    )
    circuit = get_circuit(family, num_qubits)
    rows = []
    with _atlas_session(pruning_threshold) as session:
        for gpus in gpu_counts:
            machine = MachineConfig.for_circuit(
                num_qubits, num_shards=gpus, local_qubits=local_qubits,
                gpu_memory_bytes=_offload_gpu_memory(local_qubits),
            )
            atlas_time = session.run(
                circuit, machine=machine, backend="incore", execute=False
            ).modelled().timing.total_seconds
            qdao_time = qdao.model_time(circuit, machine).total_seconds
            rows.append({"gpus": gpus, "atlas_s": atlas_time, "qdao_s": qdao_time})
    return rows


# ---------------------------------------------------------------------------
# Figures 9 / 12 — staging quality
# ---------------------------------------------------------------------------

def figure9_staging(
    num_qubits: int = 31,
    local_qubit_range: Sequence[int] | None = None,
    families: Sequence[str] = PAPER_FAMILIES,
    regional_qubits: int = 2,
    ilp_backend: str = "scipy",
    ilp_time_limit: float = 60.0,
) -> list[dict]:
    """Geometric-mean stage counts, Atlas (ILP) vs SnuQS greedy (Figures 9/12).

    ``local_qubit_range`` defaults to every odd L from 15 to ``num_qubits``
    at 31 qubits (the paper's x-axis); callers shrink it for smoke runs.
    """
    if local_qubit_range is None:
        local_qubit_range = list(range(15, num_qubits + 1, 2))
    rows = []
    for local in local_qubit_range:
        non_local = num_qubits - local
        regional = min(regional_qubits, non_local)
        global_ = non_local - regional
        atlas_counts, snuqs_counts = [], []
        for family in families:
            circuit = get_circuit(family, num_qubits)
            atlas_result = stage_circuit(
                circuit, local, regional, global_,
                backend=ilp_backend, time_limit=ilp_time_limit,
            )
            snuqs_result = snuqs_stage_circuit(circuit, local, regional, global_)
            atlas_counts.append(atlas_result.num_stages)
            snuqs_counts.append(snuqs_result.num_stages)
        rows.append(
            {
                "local_qubits": local,
                "atlas_geomean_stages": geometric_mean(atlas_counts),
                "snuqs_geomean_stages": geometric_mean(snuqs_counts),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 10 / 13 / 14–24 / 25 — kernelization quality
# ---------------------------------------------------------------------------

def figure10_kernelization(
    families: Sequence[str] = PAPER_FAMILIES,
    qubit_range: Sequence[int] = tuple(range(28, 37)),
    cost_model: CostModel = DEFAULT_COST_MODEL,
    pruning_threshold: int = 32,
) -> list[dict]:
    """Relative geometric-mean kernelization cost vs the greedy baseline (Figure 10)."""
    config = KernelizeConfig(pruning_threshold=pruning_threshold)
    rows = []
    all_ratios = []
    for family in families:
        ratios = []
        for n in qubit_range:
            circuit = get_circuit(family, n)
            atlas_cost = kernelize(circuit, cost_model, config).total_cost
            greedy_cost = greedy_kernelize(circuit, cost_model).total_cost
            ratios.append(atlas_cost / greedy_cost)
        rel = geometric_mean(ratios)
        all_ratios.extend(ratios)
        rows.append({"circuit": family, "relative_cost": rel})
    rows.append({"circuit": "geomean", "relative_cost": geometric_mean(all_ratios)})
    return rows


def figure13_pruning_threshold(
    thresholds: Sequence[int] = (4, 16, 50, 100, 200, 500),
    families: Sequence[str] = PAPER_FAMILIES,
    num_qubits: int = 28,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> list[dict]:
    """Pruning-threshold sweep: cost vs preprocessing time (Figure 13)."""
    circuits = [get_circuit(f, num_qubits) for f in families]
    greedy_costs = [greedy_kernelize(c, cost_model).total_cost for c in circuits]
    rows = []
    for threshold in thresholds:
        config = KernelizeConfig(pruning_threshold=threshold)
        ratios = []
        start = time.perf_counter()
        for circuit, greedy_cost in zip(circuits, greedy_costs):
            cost = kernelize(circuit, cost_model, config).total_cost
            ratios.append(cost / greedy_cost)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "threshold": threshold,
                "relative_cost": geometric_mean(ratios),
                "preprocessing_s": elapsed / len(circuits),
            }
        )
    # The ORDERED-KERNELIZE reference point ("Atlas-Naive" in the figure).
    start = time.perf_counter()
    naive_ratios = [
        ordered_kernelize(c, cost_model).total_cost / g
        for c, g in zip(circuits, greedy_costs)
    ]
    elapsed = time.perf_counter() - start
    rows.append(
        {
            "threshold": "naive",
            "relative_cost": geometric_mean(naive_ratios),
            "preprocessing_s": elapsed / len(circuits),
        }
    )
    return rows


def figure14_24_per_circuit_cost(
    family: str,
    qubit_range: Sequence[int] = tuple(range(28, 37)),
    cost_model: CostModel = DEFAULT_COST_MODEL,
    pruning_threshold: int = 32,
) -> list[dict]:
    """Per-family kernelization cost: Atlas / Atlas-Naive / greedy (Figures 14–24)."""
    config = KernelizeConfig(pruning_threshold=pruning_threshold)
    rows = []
    for n in qubit_range:
        circuit = get_circuit(family, n)
        rows.append(
            {
                "qubits": n,
                "atlas": kernelize(circuit, cost_model, config).total_cost,
                "atlas_naive": ordered_kernelize(circuit, cost_model).total_cost,
                "greedy": greedy_kernelize(circuit, cost_model).total_cost,
            }
        )
    return rows


def figure25_hhl_case_study(
    hhl_sizes: Sequence[int] = (4, 7, 9, 10),
    cost_model: CostModel = DEFAULT_COST_MODEL,
    pruning_threshold: int = 16,
) -> list[dict]:
    """hhl case study: many gates, few qubits (Table II + Figures 25/37)."""
    config = KernelizeConfig(pruning_threshold=pruning_threshold)
    rows = []
    for n in hhl_sizes:
        circuit = hhl(n)
        t0 = time.perf_counter()
        atlas_cost = kernelize(circuit, cost_model, config).total_cost
        atlas_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        naive_cost = ordered_kernelize(circuit, cost_model).total_cost
        naive_time = time.perf_counter() - t0
        greedy_cost = greedy_kernelize(circuit, cost_model).total_cost
        rows.append(
            {
                "qubits": n,
                "gates": len(circuit),
                "atlas": atlas_cost,
                "atlas_naive": naive_cost,
                "greedy": greedy_cost,
                "atlas_time_s": atlas_time,
                "naive_time_s": naive_time,
            }
        )
    return rows


def session_amortization(
    num_qubits: int = 10,
    sweep_size: int = 20,
    num_shards: int = 4,
    local_qubits: int | None = None,
    pruning_threshold: int = 32,
    backend: str = "incore",
) -> dict:
    """Plan-cache amortisation on a structurally identical VQC sweep.

    The Session tentpole's headline experiment: a variational parameter
    sweep (*sweep_size* ``vqc`` circuits differing only in rotation angles)
    is run cold — one fresh one-shot :func:`repro.simulate` per circuit, so
    ILP staging and DP kernelization rerun every time — and warm, through
    one :class:`repro.session.Session` whose structural plan cache
    partitions once and re-binds the plan for every further circuit.
    Returns both wall times, the speedup, and the session's cache stats.
    """
    from repro import simulate  # local import: repro imports this package

    if local_qubits is None:
        local_qubits = num_qubits - max(1, num_shards.bit_length() - 1)
    machine = MachineConfig.for_circuit(
        num_qubits, num_shards=num_shards, local_qubits=local_qubits
    )
    config = KernelizeConfig(pruning_threshold=pruning_threshold)
    circuits = [vqc(num_qubits, seed=s) for s in range(sweep_size)]

    t0 = time.perf_counter()
    cold_states = [
        simulate(c, machine, kernelize_config=config).state for c in circuits
    ]
    cold_seconds = time.perf_counter() - t0

    with Session(machine, backend=backend, kernelize_config=config) as session:
        t0 = time.perf_counter()
        job = session.run(circuits)
        warm_seconds = time.perf_counter() - t0
        stats = session.stats.as_dict()

    matches = sum(
        1 for cold, res in zip(cold_states, job) if cold.allclose(res.state)
    )
    return {
        "sweep_size": sweep_size,
        "num_qubits": num_qubits,
        "backend": job.backend,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
        "plans_built": stats["plans_built"],
        "cache_hits": stats["cache_hits"],
        "states_match_cold": matches,
    }


def figure26_36_preprocessing_time(
    family: str,
    qubit_range: Sequence[int] = tuple(range(28, 37)),
    cost_model: CostModel = DEFAULT_COST_MODEL,
    pruning_threshold: int = 32,
) -> list[dict]:
    """Per-family kernelization preprocessing time (Figures 26–36)."""
    config = KernelizeConfig(pruning_threshold=pruning_threshold)
    rows = []
    for n in qubit_range:
        circuit = get_circuit(family, n)
        timings = {}
        t0 = time.perf_counter()
        kernelize(circuit, cost_model, config)
        timings["atlas_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        ordered_kernelize(circuit, cost_model)
        timings["atlas_naive_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        greedy_kernelize(circuit, cost_model)
        timings["greedy_s"] = time.perf_counter() - t0
        rows.append({"qubits": n, **timings})
    return rows


def planner_preset_comparison(
    families: Sequence[str] = ("qft", "ghz", "ising"),
    num_qubits: int = 12,
    presets: Sequence[str] = ("fast", "balanced", "quality"),
    num_shards: int = 4,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> list[dict]:
    """Cold-plan latency and quality per planning preset.

    The planning-side companion of :func:`session_amortization`: for every
    family the circuit is cold-planned by each preset of the PassManager
    pipeline (see ``docs/planning.md``); the rows carry the measured
    latency, the plan quality, and the passes each preset skipped —
    the data behind the ``plan`` scenario of ``benchmarks/run_bench.py``.
    """
    rows = []
    for family in families:
        circuit = get_circuit(family, num_qubits)
        machine = MachineConfig.for_circuit(
            num_qubits, num_shards=num_shards,
            local_qubits=num_qubits - max(1, num_shards.bit_length() - 1),
        )
        for preset in presets:
            manager = resolve_planner(preset)
            start = time.perf_counter()
            _plan, report = manager.run(circuit, machine, cost_model=cost_model)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "circuit": family,
                    "preset": preset,
                    "plan_s": elapsed,
                    "kernel_cost": report.total_kernel_cost,
                    "stages": report.num_stages,
                    "kernels": report.num_kernels,
                    "passes_skipped": ", ".join(report.passes_skipped) or "-",
                }
            )
    return rows

"""Structured results for the static verifier.

Every checker in :mod:`repro.check` returns a :class:`CheckReport` — a
record of which checks ran and which :class:`Violation`\\ s they found —
rather than raising on first failure, so callers can collect *all*
violations of an artifact in one pass.  :meth:`CheckReport.raise_if_failed`
converts a failed report into a single :class:`repro.errors.StaticCheckError`
(the PR 6 taxonomy's permanent branch) carrying the report for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import StaticCheckError

__all__ = ["CheckReport", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One invariant violation found by a static checker.

    ``rule`` is the stable rule identifier documented in
    ``docs/static-analysis.md`` (e.g. ``"plan.locality"``,
    ``"program.parity"``, ``"schedule.overlap"``); ``site`` localizes the
    violation (stage index, op index, shard/worker index) and ``context``
    carries free-form diagnostic detail.
    """

    rule: str
    message: str
    site: str | None = None
    op_index: int | None = None
    stage: int | None = None
    context: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        where = []
        if self.stage is not None:
            where.append(f"stage {self.stage}")
        if self.op_index is not None:
            where.append(f"op {self.op_index}")
        if self.site:
            where.append(self.site)
        loc = " @ ".join(where)
        return f"[{self.rule}] {self.message}" + (f" ({loc})" if loc else "")


@dataclass
class CheckReport:
    """The outcome of one static-verification pass over one artifact.

    ``target`` names what was checked (``"plan"``, ``"program"``,
    ``"schedule"``); ``checks_run`` lists the rule families that executed
    (so a clean report can prove *what* it proved); ``violations`` is empty
    exactly when the artifact verified clean.
    """

    target: str
    checks_run: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(
        self,
        rule: str,
        message: str,
        *,
        site: str | None = None,
        op_index: int | None = None,
        stage: int | None = None,
        **context: Any,
    ) -> None:
        self.violations.append(
            Violation(
                rule=rule, message=message, site=site,
                op_index=op_index, stage=stage, context=context,
            )
        )

    def merge(self, other: "CheckReport") -> "CheckReport":
        """Fold *other*'s checks and violations into this report."""
        self.checks_run.extend(
            c for c in other.checks_run if c not in self.checks_run
        )
        self.violations.extend(other.violations)
        return self

    def raise_if_failed(self) -> "CheckReport":
        """Raise :class:`StaticCheckError` when any violation was recorded;
        return ``self`` otherwise (so calls chain)."""
        if self.violations:
            first = self.violations[0]
            raise StaticCheckError(
                f"static check of {self.target} failed with "
                f"{len(self.violations)} violation(s): {first}",
                report=self,
                site=first.rule,
                target=self.target,
                violations=[str(v) for v in self.violations],
            )
        return self

    def summary(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "ok": self.ok,
            "checks_run": list(self.checks_run),
            "violations": [str(v) for v in self.violations],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return f"<CheckReport {self.target}: {status}>"

"""Static verification of execution plans and compiled programs.

:func:`verify_plan` proves the Plan-IR invariants the executors assume —
partition coverage and bounds, per-stage locality (the staging invariant),
kernel/stage gate consistency, and (against the source circuit) exact
gate coverage and dependency order — without executing anything.

:func:`verify_program` is an abstract interpreter over a
:class:`~repro.sim.program.CompiledProgram` op stream.  It tracks the two
ping-pong buffers symbolically: which buffer *actually* holds the state
(derived from each op's kind via the :data:`~repro.sim.program.INPLACE_KINDS`
/ :data:`~repro.sim.program.STREAM_KINDS` discipline) and which buffer the
stream's declared ``mode`` metadata *claims* holds it.  Any divergence is a
ping-pong parity violation: every subsequent op would read a stale — and,
before the first streaming op, uninitialized — buffer.  It further proves
per-op qubit bounds, workspace-temporary alias freedom, per-op locality
against the plan's layout walk, and (given the source plan) that the op
stream is exactly the compiler's expected emission — no gate dropped,
duplicated or reordered, no layout transpose missing or misplaced.

Both return a :class:`~repro.check.report.CheckReport`; call
:meth:`~repro.check.report.CheckReport.raise_if_failed` to convert failure
into a :class:`repro.errors.StaticCheckError`.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Any, Optional

from ..core.kernel import KernelType
from ..sim.program import INPLACE_KINDS, STREAM_KINDS
from .report import CheckReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..circuits.circuit import Circuit
    from ..cluster.machine import MachineConfig
    from ..core.plan import ExecutionPlan
    from ..sim.program import CompiledProgram

__all__ = ["expected_op_stream", "verify_plan", "verify_program"]


# ---------------------------------------------------------------------------
# Plan verification
# ---------------------------------------------------------------------------


def _check_partition(report: CheckReport, plan: "ExecutionPlan") -> None:
    n = plan.num_qubits
    for stage_idx, stage in enumerate(plan.stages):
        part = stage.partition
        qubits = set(part.local) | set(part.regional) | set(part.global_)
        if part.num_qubits != n or qubits != set(range(n)):
            report.add(
                "plan.partition",
                f"stage partition does not cover qubits 0..{n - 1} exactly "
                f"once (got {sorted(qubits)})",
                site="plan.partition",
                stage=stage_idx,
            )


def _check_gate_bounds(report: CheckReport, plan: "ExecutionPlan") -> None:
    n = plan.num_qubits
    for stage_idx, stage in enumerate(plan.stages):
        for offset, gate in enumerate(stage.gates):
            if len(set(gate.qubits)) != len(gate.qubits):
                report.add(
                    "plan.qubit-bounds",
                    f"gate {gate} names a qubit more than once",
                    site="plan.qubit-bounds",
                    stage=stage_idx,
                    gate_offset=offset,
                )
            bad = [q for q in gate.qubits if not 0 <= q < n]
            if bad:
                report.add(
                    "plan.qubit-bounds",
                    f"gate {gate} addresses out-of-bounds qubit(s) {bad} "
                    f"(plan spans {n} qubits)",
                    site="plan.qubit-bounds",
                    stage=stage_idx,
                    gate_offset=offset,
                )


def _check_locality(
    report: CheckReport, plan: "ExecutionPlan", machine: "Optional[MachineConfig]"
) -> None:
    for stage_idx, stage in enumerate(plan.stages):
        local = set(stage.partition.local)
        if machine is not None and stage.partition.num_local > machine.local_qubits:
            report.add(
                "plan.locality",
                f"stage declares {stage.partition.num_local} local qubits but "
                f"the machine holds only {machine.local_qubits} per GPU",
                site="plan.locality",
                stage=stage_idx,
            )
        for offset, gate in enumerate(stage.gates):
            bad = set(gate.non_insular_qubits()) - local
            if bad:
                report.add(
                    "plan.locality",
                    f"non-insular qubit(s) {sorted(bad)} of gate {gate} are "
                    f"not in the stage's local set {sorted(local)}",
                    site="plan.locality",
                    stage=stage_idx,
                    gate_offset=offset,
                )


def _check_kernels(report: CheckReport, plan: "ExecutionPlan") -> None:
    for stage_idx, stage in enumerate(plan.stages):
        if stage.kernels is None:
            continue
        # Kernelization may reorder gates within a stage (grouping
        # non-adjacent compatible gates into one kernel), so the invariant
        # is multiset equality: every stage gate in exactly one kernel.
        kernel_gates = [g for k in stage.kernels for g in k.gates]
        if Counter(kernel_gates) != Counter(stage.gates):
            report.add(
                "plan.kernel-consistency",
                f"stage kernels cover {len(kernel_gates)} gates that are not "
                f"exactly the stage's {len(stage.gates)} gates (a gate was "
                f"dropped, duplicated or substituted across kernels)",
                site="plan.kernel-consistency",
                stage=stage_idx,
            )
        # Kernel gate indices are stage-relative: together they must name
        # every gate of the stage exactly once.
        kernel_indices = stage.kernels.all_gate_indices()
        if kernel_indices and sorted(kernel_indices) != list(range(len(stage.gates))):
            report.add(
                "plan.kernel-consistency",
                "stage kernel gate indices do not cover the stage's gates "
                "exactly once",
                site="plan.kernel-consistency",
                stage=stage_idx,
            )


def _check_coverage(
    report: CheckReport, plan: "ExecutionPlan", circuit: "Circuit"
) -> None:
    if plan.gate_count() != len(circuit):
        report.add(
            "plan.coverage",
            f"plan covers {plan.gate_count()} gates, circuit has {len(circuit)}",
            site="plan.coverage",
        )
    seen: list[int] = []
    for stage in plan.stages:
        seen.extend(stage.gate_indices)
    if sorted(seen) != list(range(len(circuit))):
        counts = Counter(seen)
        dup = sorted(i for i, c in counts.items() if c > 1)
        missing = sorted(set(range(len(circuit))) - set(seen))
        report.add(
            "plan.coverage",
            f"plan does not cover every gate exactly once "
            f"(duplicated: {dup}, missing: {missing})",
            site="plan.coverage",
            duplicated=dup,
            missing=missing,
        )
        return
    if not circuit.is_topologically_equivalent(seen):
        report.add(
            "plan.dependencies",
            "stage assignment violates gate dependencies (a gate runs "
            "before a predecessor it depends on)",
            site="plan.dependencies",
        )


def verify_plan(
    plan: "ExecutionPlan",
    machine: "Optional[MachineConfig]" = None,
    circuit: "Optional[Circuit]" = None,
) -> CheckReport:
    """Statically verify *plan* and return a :class:`CheckReport`.

    Checks partition coverage/bounds, gate qubit bounds, the per-stage
    locality invariant, kernel/stage gate consistency, and — when the
    source *circuit* is given — exact gate coverage and dependency order.
    """
    report = CheckReport(target="plan")
    report.checks_run += ["partition", "qubit-bounds", "locality", "kernels"]
    _check_partition(report, plan)
    _check_gate_bounds(report, plan)
    _check_locality(report, plan, machine)
    _check_kernels(report, plan)
    if circuit is not None:
        report.checks_run += ["coverage", "dependencies"]
        _check_coverage(report, plan, circuit)
    return report


# ---------------------------------------------------------------------------
# Program verification
# ---------------------------------------------------------------------------


def expected_op_stream(
    plan: "ExecutionPlan", machine: "Optional[MachineConfig]" = None
) -> list[tuple[Any, Optional[tuple]]]:
    """The compiler's expected op emission for *plan*: ``(source, gates)``
    pairs, in order.

    Mirrors :func:`repro.runtime.compile.compile_plan`'s walk structurally
    — layout transposes only at genuine permutation boundaries, one op per
    fusion kernel, one per gate of a shared-memory kernel or an
    un-kernelized stage, and the final identity-restore transpose — without
    building any payloads.  ``gates`` is ``None`` for layout ops.
    """
    from ..runtime.sharding import QubitLayout, permutation_axes

    n = plan.num_qubits
    expected: list[tuple[Any, Optional[tuple]]] = []
    layout = QubitLayout(n)
    for stage_idx, stage in enumerate(plan.stages):
        target = stage.partition.logical_to_physical()
        if target != layout.logical_to_physical():
            axes = permutation_axes(layout.logical_to_physical(), target, n)
            if axes != list(range(n)):
                expected.append((("layout", stage_idx), None))
            layout.update(target)
        if stage.kernels is None:
            for offset, gate in enumerate(stage.gates):
                expected.append((("gate", stage_idx, offset), (gate,)))
            continue
        for group_idx, kernel in enumerate(stage.kernels):
            gates = tuple(kernel.gates)
            if kernel.kernel_type is KernelType.FUSION:
                expected.append((("kernel", stage_idx, group_idx), gates))
            else:
                for offset, gate in enumerate(gates):
                    expected.append((("sm", stage_idx, group_idx, offset), (gate,)))
    identity = {q: q for q in range(n)}
    if layout.logical_to_physical() != identity:
        axes = permutation_axes(layout.logical_to_physical(), identity, n)
        if axes != list(range(n)):
            expected.append((("layout", "final"), None))
    return expected


def _stage_layouts(plan: "ExecutionPlan") -> list[dict[int, int]]:
    """The logical→physical mapping in effect during each stage."""
    from ..runtime.sharding import QubitLayout

    layout = QubitLayout(plan.num_qubits)
    maps: list[dict[int, int]] = []
    for stage in plan.stages:
        target = stage.partition.logical_to_physical()
        if target != layout.logical_to_physical():
            layout.update(target)
        maps.append(layout.logical_to_physical())
    return maps


def _check_op_metadata(report: CheckReport, program: "CompiledProgram") -> None:
    n = program.num_qubits
    believed = 0  # buffer index the declared modes say holds the state
    actual = 0    # buffer index the op kinds say holds the state
    initialized = [True, False]  # buffer 1 starts uninitialized
    diverged = False
    for op_index, op in enumerate(program.ops):
        known = op.kind in INPLACE_KINDS or op.kind in STREAM_KINDS
        if not known:
            report.add(
                "program.kind",
                f"op has unknown kind {op.kind!r}",
                site="program.kind",
                op_index=op_index,
            )
            continue
        expected_mode = "inplace" if op.kind in INPLACE_KINDS else "stream"
        if op.mode != expected_mode:
            report.add(
                "program.parity",
                f"op of kind {op.kind!r} declares mode {op.mode!r} but the "
                f"ping-pong discipline requires {expected_mode!r} — the "
                f"stream's believed state buffer diverges from the real one",
                site="program.parity",
                op_index=op_index,
            )
        # The op reads whichever buffer the stream believes is the state.
        if not diverged and believed != actual:
            diverged = True
            detail = (
                "an uninitialized buffer"
                if not initialized[believed]
                else "a stale buffer"
            )
            report.add(
                "program.uninitialized-read",
                f"op reads {detail}: the declared ping-pong parity says the "
                f"state is in buffer {believed} but it is actually in buffer "
                f"{actual}",
                site="program.uninitialized-read",
                op_index=op_index,
            )
        if expected_mode == "stream":
            initialized[1 - actual] = True
            actual = 1 - actual
        if op.mode == "stream":
            believed = 1 - believed
        if op.qubits is not None:
            if len(set(op.qubits)) != len(op.qubits):
                report.add(
                    "program.qubit-bounds",
                    f"op addresses qubit positions {op.qubits} with duplicates",
                    site="program.qubit-bounds",
                    op_index=op_index,
                )
            bad = [q for q in op.qubits if not 0 <= q < n]
            if bad:
                report.add(
                    "program.qubit-bounds",
                    f"op addresses out-of-bounds physical position(s) {bad} "
                    f"(program spans {n} qubits)",
                    site="program.qubit-bounds",
                    op_index=op_index,
                )
        if len(set(op.tmp_slots)) != len(op.tmp_slots):
            report.add(
                "program.tmp-alias",
                f"op borrows workspace temporary slots {op.tmp_slots}: a "
                f"slot is used for two roles in one op (slots must never "
                f"alias read+write)",
                site="program.tmp-alias",
                op_index=op_index,
            )


def _check_op_stream(
    report: CheckReport, program: "CompiledProgram", plan: "ExecutionPlan",
    machine: "Optional[MachineConfig]",
) -> None:
    expected = expected_op_stream(plan, machine)
    if len(program.ops) != len(expected):
        report.add(
            "program.stream",
            f"program holds {len(program.ops)} ops but the plan compiles to "
            f"{len(expected)} (op(s) dropped or duplicated)",
            site="program.stream",
            expected=len(expected),
            actual=len(program.ops),
        )
    for op_index, (op, (source, gates)) in enumerate(zip(program.ops, expected)):
        if op.source != source:
            report.add(
                "program.stream",
                f"op stream diverges from the plan: expected source {source}, "
                f"found {op.source}",
                site="program.stream",
                op_index=op_index,
            )
            return  # everything after a divergence would cascade
        if gates is not None and tuple(op.gates or ()) != gates:
            report.add(
                "program.stream",
                f"op at source {source} binds different gates than the plan "
                f"stages there",
                site="program.stream",
                op_index=op_index,
            )


def _check_op_locality(
    report: CheckReport, program: "CompiledProgram", plan: "ExecutionPlan",
    machine: "Optional[MachineConfig]",
) -> None:
    layouts = _stage_layouts(plan)
    for op_index, op in enumerate(program.ops):
        source = op.source
        if not (isinstance(source, tuple) and source and source[0] in
                ("gate", "kernel", "sm")):
            continue
        stage_idx = source[1]
        if not isinstance(stage_idx, int) or not 0 <= stage_idx < len(layouts):
            continue  # stream check reports malformed sources
        l2p = layouts[stage_idx]
        stage = plan.stages[stage_idx]
        local_count = (
            machine.local_qubits if machine is not None
            else stage.partition.num_local
        )
        for gate in op.gates or ():
            bad = [
                q for q in gate.non_insular_qubits()
                if q in l2p and l2p[q] >= local_count
            ]
            if bad:
                report.add(
                    "program.locality",
                    f"non-insular qubit(s) {bad} of gate {gate} are mapped "
                    f"to non-local physical positions (L={local_count})",
                    site="program.locality",
                    op_index=op_index,
                    stage=stage_idx,
                )


def verify_program(
    program: "CompiledProgram",
    plan: "Optional[ExecutionPlan]" = None,
    machine: "Optional[MachineConfig]" = None,
) -> CheckReport:
    """Statically verify a compiled op stream; returns a :class:`CheckReport`.

    Always proves the ping-pong parity discipline (declared mode vs op
    kind, with an abstract two-buffer interpretation flagging stale /
    uninitialized reads), per-op qubit bounds and workspace-temporary
    alias freedom.  Given the source *plan*, additionally proves the
    stream is exactly the compiler's expected emission (no op dropped,
    duplicated or reordered) and that every op's gates respect their
    stage's locality set.
    """
    report = CheckReport(target="program")
    report.checks_run += ["parity", "qubit-bounds", "tmp-alias"]
    _check_op_metadata(report, program)
    if plan is not None:
        report.checks_run += ["stream", "locality"]
        if program.num_qubits != plan.num_qubits:
            report.add(
                "program.stream",
                f"program spans {program.num_qubits} qubits but the plan "
                f"spans {plan.num_qubits}",
                site="program.stream",
            )
        else:
            _check_op_stream(report, program, plan, machine)
            _check_op_locality(report, program, plan, machine)
    return report

"""Static race detection for parallel shard schedules.

The offload/parallel runtimes rely on one property for correctness without
locks: within a barrier interval (one shards-segment of one stage), the
DRAM write-slice footprints of all workers are pairwise disjoint.  Shards
are round-robined to workers, each worker stores every shard it processed
at its (possibly relabelled) output index, and — when a segment relabels —
the per-segment relabel map must be a bijection so the second DRAM array
is written exactly once per slice.  PR 6's quarantine/redistribution keeps
the *assignment* a partition of the shard set; nothing before this module
ever proved the property.

:func:`verify_schedule` proves it statically: it replays the layout walk
and the stage segmentation exactly as the runtimes do, computes every
shard's output index symbolically (mirroring
:func:`repro.runtime.offload._gate_on_shard`'s index arithmetic — control
gating and anti-diagonal flips — without touching any amplitude data), and
checks (1) the worker assignment covers every shard exactly once and stays
in bounds, (2) the relabel map of every relabelling segment is a
bijection, (3) segments flagged non-relabelling really have the identity
map (their in-place stores depend on it), (4) per-worker write footprints
are pairwise disjoint, and (5) no shard-resolved gate actually mixes
amplitudes across shards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from .report import CheckReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..circuits.gates import Gate
    from ..cluster.machine import MachineConfig
    from ..core.plan import ExecutionPlan

__all__ = ["round_robin_assignment", "shard_write_map", "verify_schedule"]


def round_robin_assignment(num_shards: int, num_workers: int) -> dict[int, list[int]]:
    """The runtimes' default shard→worker assignment: worker ``w`` takes
    shards ``w, w+W, w+2W, ...`` (matching
    :class:`repro.runtime.parallel.ParallelRuntime`)."""
    width = max(1, min(num_workers, num_shards))
    return {w: list(range(w, num_shards, width)) for w in range(width)}


def shard_write_map(
    gates: "Sequence[Gate]",
    logical_to_physical: dict[int, int],
    local_qubits: int,
    num_shards: int,
) -> tuple[list[int], list[str]]:
    """The output index of every shard after applying *gates*, computed
    symbolically.

    Mirrors :func:`repro.runtime.offload._gate_on_shard` index for index:
    a gate whose non-local control bit is 0 on a shard leaves that shard's
    index untouched (including any flips an earlier axis of the same gate
    would have applied); an anti-diagonal non-local axis flips the
    corresponding index bit; the index threads through the gate sequence so
    later gates read the relabelled bits.  Returns ``(write_map, mixing)``
    where ``mixing`` lists descriptions of gates that mix amplitudes along
    a non-local axis (unresolvable per shard — a planner invariant
    violation).
    """
    from ..runtime.offload import _axis_kind

    write_map: list[int] = []
    mixing: list[str] = []
    mixing_seen: set[str] = set()
    for shard_index in range(num_shards):
        index = shard_index
        for gate in gates:
            control_set = set(gate.control_qubits)
            out_index = index
            skipped = False
            for pos, q in enumerate(gate.qubits):
                p = logical_to_physical[q]
                if p < local_qubits:
                    continue
                bit = (index >> (p - local_qubits)) & 1
                if q in control_set:
                    if bit == 0:
                        skipped = True
                        break
                    continue
                kind = _axis_kind(gate, pos)
                if kind == "antidiagonal":
                    out_index ^= 1 << (p - local_qubits)
                elif kind == "mixing":
                    desc = f"{gate}"
                    if desc not in mixing_seen:
                        mixing_seen.add(desc)
                        mixing.append(
                            f"gate {gate} mixes amplitudes along non-local "
                            f"qubit {q}"
                        )
            if not skipped:
                index = out_index
        write_map.append(index)
    return write_map, mixing


def _segment_gates(groups: "list[tuple[list[Gate], str]]") -> "list[Gate]":
    return [g for gates, _ktype in groups for g in gates]


def _check_assignment(
    report: CheckReport,
    assignment: dict[int, list[int]],
    num_shards: int,
    stage_idx: int,
    segment_idx: int,
) -> None:
    seen: dict[int, list[int]] = {}
    for worker, shards in assignment.items():
        local_seen: set[int] = set()
        for shard in shards:
            if not 0 <= shard < num_shards:
                report.add(
                    "schedule.out-of-range",
                    f"worker {worker} is assigned shard {shard} but the "
                    f"segment has only {num_shards} shards — an orphan "
                    f"prefetch-write outside the DRAM slices",
                    site="schedule.out-of-range",
                    stage=stage_idx,
                    segment=segment_idx,
                    worker=worker,
                )
                continue
            if shard in local_seen:
                report.add(
                    "schedule.duplicate-assignment",
                    f"worker {worker} is assigned shard {shard} twice — its "
                    f"double-buffered prefetch would load and store the "
                    f"slice twice in one barrier interval",
                    site="schedule.duplicate-assignment",
                    stage=stage_idx,
                    segment=segment_idx,
                    worker=worker,
                )
            local_seen.add(shard)
            seen.setdefault(shard, []).append(worker)
    for shard, workers in sorted(seen.items()):
        if len(workers) > 1:
            report.add(
                "schedule.duplicate-assignment",
                f"shard {shard} is assigned to workers {workers} — "
                f"concurrent loads and stores of one DRAM slice",
                site="schedule.duplicate-assignment",
                stage=stage_idx,
                segment=segment_idx,
                shard=shard,
            )
    orphans = sorted(set(range(num_shards)) - set(seen))
    if orphans:
        report.add(
            "schedule.orphan-shard",
            f"shard(s) {orphans} are assigned to no worker — their slices "
            f"would carry stale amplitudes through the barrier",
            site="schedule.orphan-shard",
            stage=stage_idx,
            segment=segment_idx,
            orphans=orphans,
        )


def _check_write_disjointness(
    report: CheckReport,
    assignment: dict[int, list[int]],
    write_map: list[int],
    num_shards: int,
    stage_idx: int,
    segment_idx: int,
) -> None:
    writers: dict[int, int] = {}
    for worker, shards in sorted(assignment.items()):
        for shard in shards:
            if not 0 <= shard < num_shards:
                continue  # reported by the assignment check
            out = write_map[shard]
            prev = writers.get(out)
            if prev is not None and prev != worker:
                report.add(
                    "schedule.overlap",
                    f"workers {prev} and {worker} both write DRAM slice "
                    f"{out} in one barrier interval — a data race",
                    site="schedule.overlap",
                    stage=stage_idx,
                    segment=segment_idx,
                    slice=out,
                )
            writers[out] = worker


def verify_schedule(
    plan: "ExecutionPlan",
    machine: "MachineConfig",
    num_workers: int = 1,
    assignments: Optional[dict[int, list[int]]] = None,
) -> CheckReport:
    """Statically verify the parallel shard schedule *plan* induces.

    Replays each stage's layout and segmentation exactly as
    :func:`repro.runtime.offload.execute_plan_offloaded` and
    :class:`repro.runtime.parallel.ParallelRuntime` do, then proves the
    write-exclusivity properties listed in the module docstring.
    *assignments* overrides the default round-robin shard→worker map for
    every shards-segment (the hook the differential tests use to model a
    corrupted redistribution).
    """
    from ..runtime.offload import (
        materialize_stage_segments,
        segment_relabels_shards,
        split_stage_segment_shapes,
    )
    from ..runtime.sharding import QubitLayout

    report = CheckReport(target="schedule")
    report.checks_run += [
        "assignment", "relabel-bijection", "relabel-flag", "write-disjointness",
        "mixing",
    ]
    n = plan.num_qubits
    local = machine.local_qubits if machine.local_qubits < n else n
    num_shards = 1 << (n - local)

    layout = QubitLayout(n)
    for stage_idx, stage in enumerate(plan.stages):
        target = stage.partition.logical_to_physical()
        if target != layout.logical_to_physical():
            layout.update(target)
        l2p = layout.logical_to_physical()
        shapes = split_stage_segment_shapes(stage, l2p, local)
        segments = materialize_stage_segments(stage, shapes)
        for segment_idx, (kind, payload) in enumerate(segments):
            if kind != "shards":
                continue  # full-state segments run single-threaded
            assignment = (
                assignments if assignments is not None
                else round_robin_assignment(num_shards, num_workers)
            )
            _check_assignment(report, assignment, num_shards, stage_idx, segment_idx)
            gates = _segment_gates(payload)
            write_map, mixing = shard_write_map(gates, l2p, local, num_shards)
            for message in mixing:
                report.add(
                    "schedule.mixing",
                    message + " — it cannot run in a shards-segment",
                    site="schedule.mixing",
                    stage=stage_idx,
                    segment=segment_idx,
                )
            relabels = segment_relabels_shards(payload, l2p, local)
            identity = write_map == list(range(num_shards))
            if not relabels and not identity:
                report.add(
                    "schedule.relabel-flag",
                    "segment is flagged non-relabelling (in-place stores) "
                    "but its write map is not the identity",
                    site="schedule.relabel-flag",
                    stage=stage_idx,
                    segment=segment_idx,
                )
            if relabels and sorted(write_map) != list(range(num_shards)):
                missed = sorted(set(range(num_shards)) - set(write_map))
                report.add(
                    "schedule.relabel-bijection",
                    f"segment relabel map is not a bijection: slices "
                    f"{missed} are never written while others are written "
                    f"more than once",
                    site="schedule.relabel-bijection",
                    stage=stage_idx,
                    segment=segment_idx,
                    write_map=list(write_map),
                )
            _check_write_disjointness(
                report, assignment, write_map, num_shards, stage_idx, segment_idx
            )
    return report

"""Static verification of execution artifacts — proofs before execution.

Three layers, all returning structured :class:`CheckReport`\\ s whose
violations reuse the PR 6 error taxonomy via
:class:`repro.errors.StaticCheckError`:

* :func:`verify_plan` — Plan-IR invariants: partition coverage and
  bounds, qubit bounds, per-stage locality, kernel/stage consistency,
  exact circuit coverage and dependency order.
* :func:`verify_program` — an abstract interpreter over compiled op
  streams: ping-pong parity, uninitialized/stale buffer reads, per-op
  qubit bounds, workspace-temporary aliasing, compiler-emission
  equivalence, per-op locality.
* :func:`verify_schedule` — shard-schedule race detection: worker
  assignment coverage, relabel-map bijectivity, per-worker DRAM
  write-slice disjointness.

Wired into :class:`repro.session.Session` via ``check="off"|"plans"|"full"``
and into the ``"quality"`` planner preset via the ``verify`` pass; see
``docs/static-analysis.md``.
"""

from .races import round_robin_assignment, shard_write_map, verify_schedule
from .report import CheckReport, Violation
from .verify import expected_op_stream, verify_plan, verify_program

__all__ = [
    "CheckReport",
    "Violation",
    "expected_op_stream",
    "round_robin_assignment",
    "shard_write_map",
    "verify_plan",
    "verify_program",
    "verify_schedule",
]

"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so that
legacy editable installs (``pip install -e .`` without the wheel package)
work in offline environments.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.5.0",
    description=(
        "Atlas reproduction: hierarchical partitioning for quantum circuit "
        "simulation (SC 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)

#!/usr/bin/env python
"""Calibrate the kernel cost model and re-run the kernelization ablation with it.

The paper's KERNELIZE cost function is calibrated by micro-benchmarking the
target GPU (Section VII-A): fused-matrix times per kernel width, the
shared-memory micro-batch load time, and per-gate-type times.  This example
performs the same calibration against the NumPy execution substrate, prints
the measured table, and shows that the Figure-10 comparison (KERNELIZE vs
greedy packing vs the contiguous-segment DP) still holds under the measured
cost model — i.e. the algorithmic win does not depend on the hand-written
constants.

Run with:  python examples/cost_model_calibration.py
"""

from repro import MachineConfig, Session
from repro.analysis import format_table
from repro.analysis.calibration import calibrate_cost_model
from repro.circuits.library import ising, qft, qsvm
from repro.core import KernelizeConfig, greedy_kernelize, kernelize, ordered_kernelize


def main() -> None:
    calibration = calibrate_cost_model(state_qubits=14, max_fusion_qubits=7, repeats=3)
    print(format_table(calibration.summary(), title="Measured kernel primitives (seconds)"))
    model = calibration.cost_model
    print(f"\nMost cost-efficient fusion width under the measured model: "
          f"{model.best_fusion_width()} qubits")

    rows = []
    for circuit in (qft(14), ising(14), qsvm(14)):
        atlas = kernelize(circuit, model, KernelizeConfig(pruning_threshold=32)).total_cost
        naive = ordered_kernelize(circuit, model).total_cost
        greedy = greedy_kernelize(circuit, model).total_cost
        rows.append(
            {
                "circuit": circuit.name,
                "kernelize": atlas,
                "ordered": naive,
                "greedy": greedy,
                "kernelize/greedy": atlas / greedy,
            }
        )
    print()
    print(format_table(rows, title="Kernelization cost under the calibrated model"))

    # The calibrated model plugs straight into the Session facade: every
    # plan it builds (and caches) is kernelized — and its modelled timing
    # priced — with the measured constants instead of the defaults.
    machine = MachineConfig.for_circuit(14, num_shards=4, local_qubits=12)
    with Session(machine, cost_model=model) as session:
        result = session.run(qft(14), execute=False).modelled()
    print(
        f"\nSession with the calibrated cost model: qft(14) plans into "
        f"{result.plan.num_kernels} kernels, modelled total "
        f"{result.timing.total_seconds * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Deep dive into the two partitioning levels: staging and kernelization.

This example looks *inside* the Atlas pipeline rather than at end-to-end
times:

* staging — compares the ILP stager with the SnuQS-style greedy heuristic on
  the same circuit across a range of local-qubit budgets (the paper's
  Figure 9 ablation), showing that the ILP always needs at most as many
  stages;
* kernelization — compares KERNELIZE, ORDERED-KERNELIZE and the greedy
  5-qubit packer on one stage (the paper's Figure 10 ablation), printing the
  kernel widths each strategy chooses;
* plan provenance — the same pipeline driven through the
  :class:`repro.Session` facade, showing what its structural plan cache
  stores and when a second circuit hits it;
* planning presets — the PassManager pipeline's ``fast`` / ``balanced`` /
  ``quality`` presets on one circuit: cold-plan latency, kernel cost, and
  the per-pass telemetry each report carries (see ``docs/planning.md``).

Run with:  python examples/partitioning_deep_dive.py
"""

import time

from repro import MachineConfig, Session, build_plan
from repro.circuits.library import ising, qft, vqc
from repro.core import (
    KernelizeConfig,
    greedy_kernelize,
    kernelize,
    ordered_kernelize,
    snuqs_stage_circuit,
    stage_circuit,
)


def staging_study() -> None:
    num_qubits = 16
    circuit = ising(num_qubits)
    print(f"Staging study on {circuit.name} ({len(circuit)} gates)")
    print(f"{'L':>3} | {'ILP stages':>10} | {'SnuQS stages':>12}")
    print("-" * 33)
    for local in range(8, num_qubits + 1, 2):
        non_local = num_qubits - local
        regional = min(2, non_local)
        global_ = non_local - regional
        ilp = stage_circuit(circuit, local, regional, global_)
        greedy = snuqs_stage_circuit(circuit, local, regional, global_)
        print(f"{local:>3} | {ilp.num_stages:>10} | {greedy.num_stages:>12}")
        assert ilp.num_stages <= greedy.num_stages
    print()


def kernelization_study() -> None:
    circuit = qft(16)
    print(f"Kernelization study on {circuit.name} ({len(circuit)} gates)")
    strategies = {
        "KERNELIZE (Atlas)": lambda c: kernelize(c, config=KernelizeConfig(pruning_threshold=64)),
        "ORDERED-KERNELIZE": ordered_kernelize,
        "greedy 5-qubit packing": greedy_kernelize,
    }
    for name, fn in strategies.items():
        kernels = fn(circuit)
        widths = kernels.widths()
        print(
            f"  {name:<24} cost {kernels.total_cost:7.2f}  "
            f"kernels {len(kernels):3d}  widths {sorted(set(widths))}"
        )
    print()


def provenance_study() -> None:
    num_qubits = 12
    machine = MachineConfig.for_circuit(num_qubits, num_shards=4, local_qubits=10)
    print("Plan provenance through the Session facade")
    with Session(machine, backend="incore") as session:
        first = session.run(vqc(num_qubits, seed=0), execute=False).modelled()
        print(
            f"  {first.circuit_name}: cache_hit={first.cache_hit}, "
            f"staging {first.report.staging_seconds * 1e3:.1f} ms, "
            f"kernelization {first.report.kernelization_seconds * 1e3:.1f} ms"
        )
        # Same structure, different rotation angles: the partitioner is
        # skipped and the cached plan is re-bound to the new gates.
        second = session.run(vqc(num_qubits, seed=1), execute=False).modelled()
        print(
            f"  {second.circuit_name}: cache_hit={second.cache_hit}, "
            f"report={second.report} (no preprocessing ran)"
        )
        assert second.cache_hit and second.report is None
        print(f"  session stats: {session.stats.as_dict()}")
    print()


def preset_study() -> None:
    num_qubits = 12
    circuit = qft(num_qubits)
    machine = MachineConfig.for_circuit(num_qubits, num_shards=4, local_qubits=10)
    print("Planning presets on", circuit.name)
    for preset in ("fast", "balanced", "quality"):
        start = time.perf_counter()
        plan, report = build_plan(circuit, machine, planner=preset)
        elapsed = time.perf_counter() - start
        skipped = ", ".join(report.passes_skipped) or "none"
        print(
            f"  {preset:<9} {elapsed * 1e3:7.1f} ms  cost "
            f"{report.total_kernel_cost:6.2f}  stages {report.num_stages}  "
            f"pipeline {' -> '.join(report.pipeline)}  skipped: {skipped}"
        )
    # The fits-locally shortcut: a single-shard machine needs no staging
    # solver at all — the stage pass records why it skipped it.
    local_machine = MachineConfig.for_circuit(num_qubits, num_shards=1)
    _plan, report = build_plan(circuit, local_machine, planner="fast")
    print(f"  single-shard machine: {report.passes_skipped['stage']}")
    print()


if __name__ == "__main__":
    staging_study()
    kernelization_study()
    provenance_study()
    preset_study()

#!/usr/bin/env python
"""Quickstart: partition, execute and time a QFT circuit on a modelled 4-GPU node.

This example walks through the full Atlas pipeline on a size that runs in a
few seconds on a laptop:

1. build a benchmark circuit from the library,
2. describe the machine (local / regional / global qubits),
3. hierarchically partition the circuit (ILP staging + DP kernelization),
4. execute the plan functionally and check it against the reference
   simulator,
5. print the modelled wall-clock time a real multi-GPU machine would need.

Run with:  python examples/quickstart.py
"""

from repro import MachineConfig, simulate, simulate_reference
from repro.circuits.library import qft


def main() -> None:
    num_qubits = 14
    circuit = qft(num_qubits)
    print(f"Circuit: {circuit.name} — {len(circuit)} gates, depth {circuit.depth()}")

    # A single node with 4 GPUs: 2 regional qubits, no global qubits.
    machine = MachineConfig.for_circuit(num_qubits, num_gpus=4, local_qubits=num_qubits - 2)
    print(
        f"Machine: L={machine.local_qubits} local, R={machine.regional_qubits} regional, "
        f"G={machine.global_qubits} global qubits "
        f"({machine.num_nodes} node(s) × {machine.gpus_per_node} GPUs)"
    )

    result = simulate(circuit, machine)
    plan, timing = result.plan, result.timing

    print(f"\nPlan: {plan.num_stages} stage(s), {plan.num_kernels} kernel(s)")
    for i, stage in enumerate(plan.stages):
        widths = stage.kernels.widths() if stage.kernels else []
        print(
            f"  stage {i}: {stage.num_gates} gates, local qubits {stage.partition.local}, "
            f"kernel widths {widths}"
        )

    print("\nModelled execution on the GPU cluster:")
    print(f"  computation   : {timing.computation_seconds * 1e3:.3f} ms")
    print(f"  communication : {timing.communication_seconds * 1e3:.3f} ms")
    print(f"  total         : {timing.total_seconds * 1e3:.3f} ms")

    # Validate the staged execution against the straightforward simulator.
    reference = simulate_reference(circuit)
    assert reference.allclose(result.state), "staged execution diverged from reference!"
    print("\nFunctional check passed: staged execution matches the reference simulator.")
    probs = result.state.probabilities()
    print(f"First four output probabilities: {probs[:4].round(6)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: run a QFT circuit through the Session facade on a modelled 4-GPU node.

This example walks through the full Atlas pipeline on a size that runs in a
few seconds on a laptop:

1. build a benchmark circuit from the library,
2. describe the machine (local / regional / global qubits) — ``num_shards``
   is the number of ``2^L`` state shards; here it equals the 4 physical
   GPUs, so nothing streams through DRAM,
3. open a :class:`repro.Session` (backend ``"auto"`` picks the in-core
   executor because the state fits device memory), and ``run`` the circuit —
   hierarchical partitioning (ILP staging + DP kernelization), functional
   execution, sampling, and the modelled wall-clock time all come back in
   one :class:`repro.Result`,
4. check the staged execution against the reference simulator,
5. run a second, structurally identical circuit and watch the structural
   plan cache skip the partitioner.

Run with:  python examples/quickstart.py
"""

from repro import MachineConfig, Session, simulate_reference
from repro.circuits.library import qft


def main() -> None:
    num_qubits = 14
    circuit = qft(num_qubits)
    print(f"Circuit: {circuit.name} — {len(circuit)} gates, depth {circuit.depth()}")

    # A single node with 4 GPUs: 4 shards, 2 regional qubits, no global qubits.
    machine = MachineConfig.for_circuit(
        num_qubits, num_shards=4, local_qubits=num_qubits - 2
    )
    print(
        f"Machine: L={machine.local_qubits} local, R={machine.regional_qubits} regional, "
        f"G={machine.global_qubits} global qubits "
        f"({machine.num_nodes} node(s) × {machine.gpus_per_node} GPUs, "
        f"{machine.num_shards} shards)"
    )

    with Session(machine) as session:
        result = session.run(circuit, shots=8).result()
        plan, timing = result.plan, result.timing

        print(
            f"\nBackend: {result.backend!r} (auto-selected; state fits GPU memory)"
        )
        print(f"Plan: {plan.num_stages} stage(s), {plan.num_kernels} kernel(s)")
        for i, stage in enumerate(plan.stages):
            widths = stage.kernels.widths() if stage.kernels else []
            print(
                f"  stage {i}: {stage.num_gates} gates, local qubits {stage.partition.local}, "
                f"kernel widths {widths}"
            )

        print("\nModelled execution on the GPU cluster:")
        print(f"  computation   : {timing.computation_seconds * 1e3:.3f} ms")
        print(f"  communication : {timing.communication_seconds * 1e3:.3f} ms")
        print(f"  total         : {timing.total_seconds * 1e3:.3f} ms")

        # Validate the staged execution against the straightforward simulator.
        reference = simulate_reference(circuit)
        assert reference.allclose(result.state), "staged execution diverged from reference!"
        print("\nFunctional check passed: staged execution matches the reference simulator.")
        probs = result.state.probabilities()
        print(f"First four output probabilities: {probs[:4].round(6)}")
        print(f"Eight measurement samples: {sorted(result.counts().items())}")

        # A structurally identical circuit reuses the cached plan: the ILP
        # and the DP kernelizer do not run again.
        rerun = session.run(qft(num_qubits)).result()
        assert rerun.cache_hit, "second structurally identical run missed the cache"
        stats = session.stats
        print(
            f"\nPlan cache: {stats.plans_built} plan built, "
            f"{stats.cache_hits} hit(s) — partitioning ran once for two runs."
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""DRAM offloading: simulating circuits larger than GPU memory (paper Section VII-C).

Atlas does not require the whole state vector to fit on the GPUs: the state
lives in host DRAM, is split into shards, and each stage streams every shard
through a GPU exactly once.  This example

1. runs the shard-by-shard offload backend through the :class:`repro.Session`
   facade on a circuit whose "GPU" is deliberately tiny, verifying the result
   against the reference simulator and showing the
   one-load-per-stage-per-shard property,
2. shows that ``backend="auto"`` picks the shard-streaming parallel runtime
   on its own when the state genuinely does not fit device memory, and
3. reproduces the shape of Figure 7: modelled time of Atlas vs a QDAO-style
   block-streaming offloader as the circuit outgrows GPU memory.

Run with:  python examples/dram_offloading.py
"""

from repro import MachineConfig, Session
from repro.analysis import figure7_offloading, format_table
from repro.circuits.library import qft
from repro.sim import simulate_reference


def functional_demo() -> None:
    num_qubits = 14
    circuit = qft(num_qubits)
    # One GPU whose shard holds only 2^10 amplitudes: the remaining 4
    # qubits overflow into regional (DRAM) qubits, so 16 shards are swapped
    # through the device.
    machine = MachineConfig.for_circuit(num_qubits, num_shards=1, local_qubits=10)
    assert machine.num_shards == 16 and machine.physical_gpus == 1

    with Session(machine, backend="offload") as session:
        result = session.run(circuit).result()
    stats = result.execution_stats
    reference = simulate_reference(circuit)
    assert reference.allclose(result.state), "offloaded execution diverged!"

    print(f"{circuit.name}: {result.plan.num_stages} stages, {stats.num_shards} shards")
    print(f"shard loads per stage: {stats.per_stage_loads}")
    print(
        f"total host<->device traffic: {stats.bytes_transferred / 2**20:.1f} MiB "
        f"(state is {2 ** num_qubits * 16 / 2**20:.1f} MiB)"
    )
    print("functional check passed\n")


def auto_selection_demo() -> None:
    num_qubits = 12
    circuit = qft(num_qubits)
    # A machine whose single tiny "GPU" holds 2^8 amplitudes: the 2^12 state
    # cannot fit, so "auto" must route the job to the shard-streaming
    # parallel runtime instead of the in-core executor.
    machine = MachineConfig.for_circuit(
        num_qubits,
        num_shards=1,
        local_qubits=8,
        gpu_memory_bytes=(1 << 8) * 16,
    )
    with Session(machine) as session:
        result = session.run(circuit).result()
    assert result.backend == "parallel", result.backend
    assert simulate_reference(circuit).allclose(result.state)
    print(
        f"auto backend selection: state of 2^{num_qubits} amplitudes vs "
        f"{machine.physical_gpus} GPU(s) of {machine.gpu_memory_bytes} B "
        f"-> backend {result.backend!r}\n"
    )


def figure7_demo() -> None:
    rows = figure7_offloading(
        qubit_range=(20, 21, 22, 23, 24),
        local_qubits=20,
        pruning_threshold=16,
    )
    print(
        format_table(
            rows,
            title="Atlas vs QDAO-style offloading, qft circuits (modelled seconds, "
            "GPU holds 2^20 amplitudes)",
        )
    )


if __name__ == "__main__":
    functional_demo()
    auto_selection_demo()
    figure7_demo()

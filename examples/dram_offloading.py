#!/usr/bin/env python
"""DRAM offloading: simulating circuits larger than GPU memory (paper Section VII-C).

Atlas does not require the whole state vector to fit on the GPUs: the state
lives in host DRAM, is split into shards, and each stage streams every shard
through a GPU exactly once.  This example

1. runs the shard-by-shard offload executor functionally on a circuit whose
   "GPU" is deliberately tiny, verifying the result against the reference
   simulator and showing the one-load-per-stage-per-shard property, and
2. reproduces the shape of Figure 7: modelled time of Atlas vs a QDAO-style
   block-streaming offloader as the circuit outgrows GPU memory.

Run with:  python examples/dram_offloading.py
"""

from repro import MachineConfig
from repro.analysis import figure7_offloading, format_table
from repro.circuits.library import qft
from repro.core import partition
from repro.runtime import execute_plan_offloaded
from repro.sim import simulate_reference


def functional_demo() -> None:
    num_qubits = 14
    circuit = qft(num_qubits)
    # Pretend each "GPU shard" holds only 2^10 amplitudes: the remaining 4
    # qubits are regional, so 16 shards are swapped through the device.
    machine = MachineConfig.for_circuit(num_qubits, num_gpus=1, local_qubits=10)
    plan, _report = partition(circuit, machine)

    state, stats = execute_plan_offloaded(plan, machine)
    reference = simulate_reference(circuit)
    assert reference.allclose(state), "offloaded execution diverged!"

    print(f"{circuit.name}: {plan.num_stages} stages, {stats.num_shards} shards")
    print(f"shard loads per stage: {stats.per_stage_loads}")
    print(
        f"total host<->device traffic: {stats.bytes_transferred / 2**20:.1f} MiB "
        f"(state is {2 ** num_qubits * 16 / 2**20:.1f} MiB)"
    )
    print("functional check passed\n")


def figure7_demo() -> None:
    rows = figure7_offloading(
        qubit_range=(20, 21, 22, 23, 24),
        local_qubits=20,
        pruning_threshold=16,
    )
    print(
        format_table(
            rows,
            title="Atlas vs QDAO-style offloading, qft circuits (modelled seconds, "
            "GPU holds 2^20 amplitudes)",
        )
    )


if __name__ == "__main__":
    functional_demo()
    figure7_demo()

#!/usr/bin/env python
"""Weak-scaling study: Atlas vs the baseline simulator models (paper Figure 5).

Reproduces the *shape* of the paper's headline experiment at a reduced scale:
for each GPU count the circuit grows by one qubit (weak scaling), and the
modelled simulation time of Atlas, HyQuas, cuQuantum and Qiskit-Aer is
reported.  Atlas's ILP staging keeps the number of all-to-all exchanges flat
as the machine grows, which is where its advantage comes from.

Every curve runs through one :class:`repro.Session`: Atlas is the session's
own ILP+DP pipeline (``backend="incore"``), each baseline is a registered
modelled backend (``"hyquas"``/``"cuquantum"``/``"qiskit"``) — see
``figure5_weak_scaling`` in :mod:`repro.analysis.experiments`.

Run with:  python examples/weak_scaling_study.py [--local-qubits N]
"""

import argparse

from repro.analysis import figure5_weak_scaling, format_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--local-qubits",
        type=int,
        default=20,
        help="local qubits per GPU shard (28 reproduces the paper's scale; "
        "20 keeps the ILP solves fast for a demo)",
    )
    parser.add_argument(
        "--families",
        nargs="+",
        default=["qft", "ghz", "ising"],
        help="circuit families to include",
    )
    parser.add_argument(
        "--gpus", nargs="+", type=int, default=[1, 4, 16, 64], help="GPU counts"
    )
    args = parser.parse_args()

    results = figure5_weak_scaling(
        families=args.families,
        gpu_counts=args.gpus,
        local_qubits=args.local_qubits,
        pruning_threshold=16,
    )
    for family, rows in results.items():
        series = {
            name: [row[name] for row in rows]
            for name in ("atlas", "hyquas", "cuquantum", "qiskit")
        }
        series["speedup"] = [row["speedup_vs_best_baseline"] for row in rows]
        print()
        print(
            format_series(
                "gpus",
                [row["gpus"] for row in rows],
                series,
                title=f"Weak scaling — {family} (modelled seconds)",
            )
        )


if __name__ == "__main__":
    main()
